//! Prepared queries: parse/validate/rewrite/compile once, execute many.

use crate::delta::QueryFootprint;
use qld_algebra::Plan;
use qld_approx::CompletenessTheorem;
use qld_logic::{Query, QueryClass};

/// A query prepared against one [`Engine`](crate::Engine): validated,
/// classified, certified, rewritten to the §5 `Q̂`, and (when `Q̂` is
/// first-order) compiled to an optimized relational-algebra plan.
///
/// All of these are *query-level* artifacts — they depend on the query and
/// the database schema/statistics, not on which semantics later runs — so
/// computing them once and executing many times is both safe and the point
/// of the type: re-running a `PreparedQuery` skips parsing, validation,
/// NNF, the `Q ↦ Q̂` rewrite, and plan compilation/optimization.
///
/// A `PreparedQuery` is tied to the engine that prepared it: executing it
/// on another engine is rejected. It stays valid across
/// [`Engine::apply`](crate::Engine::apply) deltas — the rewrite and plan
/// reference predicate *ids*, which deltas never change — but its
/// completeness certificate is epoch-stamped: when the database has moved
/// on, execution re-certifies it against the current database instead of
/// trusting the stale verdict (see
/// [`Engine::recertify`](crate::Engine::recertify)).
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    pub(crate) engine_id: u64,
    /// The engine epoch this query's certificate was computed at.
    pub(crate) epoch: u64,
    pub(crate) query: Query,
    pub(crate) class: QueryClass,
    pub(crate) completeness: Option<CompletenessTheorem>,
    pub(crate) rewritten: Query,
    pub(crate) plan: Option<Plan>,
    pub(crate) fingerprint: u64,
    pub(crate) footprint: QueryFootprint,
}

impl PreparedQuery {
    /// The validated source query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// A structural hash of the source query, computed once at prepare
    /// time. Within one engine it identifies the query up to structural
    /// equality, so `(fingerprint, semantics)` keys the engine's answer
    /// cache: every other cache-relevant input (database, backend, alpha
    /// mode, NE store, mapping strategy) is fixed at engine construction.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The query's syntactic class (positive first-order / first-order /
    /// second-order).
    pub fn class(&self) -> QueryClass {
        self.class
    }

    /// The completeness theorem (12 or 13) under which the §5
    /// approximation is exact for this query on this engine's database, or
    /// `None` if only soundness holds. This is what
    /// [`Semantics::Auto`](crate::Semantics::Auto) dispatches on.
    ///
    /// The verdict is as of [`PreparedQuery::epoch`]; after a delta the
    /// engine re-certifies automatically at execution time, or eagerly
    /// via [`Engine::recertify`](crate::Engine::recertify).
    pub fn completeness(&self) -> Option<CompletenessTheorem> {
        self.completeness
    }

    /// The engine epoch this query's certificate was computed at (see
    /// [`Engine::epoch`](crate::Engine::epoch)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The query's predicate footprint — the selective cache-invalidation
    /// key (see [`QueryFootprint`]).
    pub fn footprint(&self) -> &QueryFootprint {
        &self.footprint
    }

    /// The §5 rewrite `Q̂` over the engine's extended vocabulary
    /// (`NE`/`α_P` predicates added).
    pub fn rewritten(&self) -> &Query {
        &self.rewritten
    }

    /// The optimized relational-algebra plan for `Q̂`, cached at prepare
    /// time. `None` when `Q̂` is second-order (the algebra backend is
    /// first-order only) or when the engine's backend is naive (which
    /// never executes a plan — use
    /// [`Engine::plan_for`](crate::Engine::plan_for) to compile one on
    /// demand, e.g. for display).
    pub fn plan(&self) -> Option<&Plan> {
        self.plan.as_ref()
    }
}
