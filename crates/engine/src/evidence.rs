//! What the engine ran and what the answer is worth: [`Regime`],
//! [`Certificate`], [`Evidence`], and the [`Answers`] result they ride on.

use qld_approx::CompletenessTheorem;
use qld_physical::Relation;
use std::fmt;
use std::time::Duration;

/// The answer semantics a caller asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Semantics {
    /// Exact certain answers: Theorem 1 enumeration, with the Corollary 2
    /// fast path when the database is fully specified. Exponential in
    /// general (Theorem 5 says it must be, unless P = NP).
    Exact,
    /// The §5 approximation: always polynomial, always sound (Theorem 11),
    /// complete exactly when Theorem 12 or 13 applies.
    Approx,
    /// Tuples true in *some* model of the theory — the dual upper bound.
    Possible,
    /// Certified adaptive dispatch: run the cheapest path the paper proves
    /// exact (Corollary 2 on fully specified databases, the §5
    /// approximation on positive first-order queries), and escalate to the
    /// Theorem 1 enumeration only when no completeness theorem applies.
    /// Every `Auto` answer is exact and says which theorem vouches for it.
    #[default]
    Auto,
}

impl Semantics {
    /// All semantics, in display order.
    pub const ALL: [Semantics; 4] = [
        Semantics::Exact,
        Semantics::Approx,
        Semantics::Possible,
        Semantics::Auto,
    ];

    /// Canonical lowercase name (also accepted by [`Semantics::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Semantics::Exact => "exact",
            Semantics::Approx => "approx",
            Semantics::Possible => "possible",
            Semantics::Auto => "auto",
        }
    }

    /// Parses a semantics name (`exact`, `approx`/`approximate`,
    /// `possible`, `auto`).
    pub fn parse(s: &str) -> Option<Semantics> {
        match s {
            "exact" => Some(Semantics::Exact),
            "approx" | "approximate" => Some(Semantics::Approx),
            "possible" => Some(Semantics::Possible),
            "auto" => Some(Semantics::Auto),
            _ => None,
        }
    }
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which evaluation machinery actually produced the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// Theorem 1: intersect `Q(h(Ph₁(LB)))` over every respecting mapping
    /// `h` (kernel-canonicalized or raw, per configuration).
    Theorem1,
    /// Corollary 2: the database is fully specified, so one evaluation
    /// over `Ph₁(LB)` is the whole job.
    Corollary2,
    /// §5: evaluate the rewritten `Q̂` over `Ph₂(LB)` on a relational
    /// backend.
    Approximation,
    /// Union of `Q(h(Ph₁(LB)))` over every respecting mapping — the
    /// possible-answers dual.
    PossibleWorlds,
}

impl Regime {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Regime::Theorem1 => "Theorem 1",
            Regime::Corollary2 => "Corollary 2",
            Regime::Approximation => "§5 approx",
            Regime::PossibleWorlds => "possible worlds",
        }
    }
}

impl fmt::Display for Regime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How the returned tuples relate to the true certain answers `Q(LB)` —
/// and which theorem of the paper proves it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Certificate {
    /// The tuples *are* `Q(LB)`: the Theorem 1 enumeration ran to
    /// completion.
    ExactTheorem1,
    /// The tuples *are* `Q(LB)`: the database is fully specified, so by
    /// Corollary 2 `Q(LB) = Q(Ph₁(LB))`.
    ExactCorollary2,
    /// The tuples *are* `Q(LB)`: the §5 approximation ran, it is sound by
    /// Theorem 11, and the named completeness theorem (12 or 13) closes
    /// the gap.
    ExactCompleteness(CompletenessTheorem),
    /// The tuples are a *subset* of `Q(LB)`: the §5 approximation ran and
    /// only its soundness (Theorem 11) is guaranteed.
    SoundLowerBound,
    /// The tuples are a *superset* of `Q(LB)`: possible answers (tuples
    /// true in at least one model).
    PossibleUpperBound,
    /// The engine *refused* a Theorem 1 enumeration that exceeded the
    /// configured mapping budget and returned certified bounds instead:
    /// the tuples are the §5 lower bound (sound by Theorem 11), and
    /// [`Answers::upper_bound`](crate::Answers::upper_bound) carries a
    /// certified superset of `Q(LB)` (the complement of the §5
    /// approximation of `¬Q`, sound by Theorem 11 applied to the negated
    /// query). Equal bounds pin the answer exactly; a gap is the price of
    /// staying polynomial.
    BoundedPair,
}

impl Certificate {
    /// Does this certificate guarantee the tuples equal the certain
    /// answers `Q(LB)`?
    pub fn is_exact(self) -> bool {
        matches!(
            self,
            Certificate::ExactTheorem1
                | Certificate::ExactCorollary2
                | Certificate::ExactCompleteness(_)
        )
    }

    /// The paper result backing the certificate.
    pub fn theorem(self) -> &'static str {
        match self {
            Certificate::ExactTheorem1 => "Theorem 1",
            Certificate::ExactCorollary2 => "Corollary 2",
            Certificate::ExactCompleteness(t) => t.name(),
            Certificate::SoundLowerBound => "Theorem 11",
            Certificate::PossibleUpperBound => "possible-answer dual of Theorem 1",
            Certificate::BoundedPair => "Theorem 11 (on Q and ¬Q)",
        }
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Certificate::ExactTheorem1 => write!(f, "exact (Theorem 1)"),
            Certificate::ExactCorollary2 => write!(f, "exact (Corollary 2)"),
            Certificate::ExactCompleteness(t) => {
                write!(f, "exact (Theorem 11 + {t})")
            }
            Certificate::SoundLowerBound => write!(f, "sound lower bound (Theorem 11)"),
            Certificate::PossibleUpperBound => write!(f, "upper bound (possible answers)"),
            Certificate::BoundedPair => {
                write!(f, "certified bounds (Theorem 11 on Q and ¬Q; over budget)")
            }
        }
    }
}

/// A report on how an answer was produced: the machinery that ran, the
/// guarantee the paper gives for the result, and measured effort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evidence {
    /// The semantics the caller requested.
    pub requested: Semantics,
    /// The machinery that actually ran (informative under
    /// [`Semantics::Auto`], where the engine picks).
    pub regime: Regime,
    /// The relationship of the tuples to the true certain answers.
    pub certificate: Certificate,
    /// Wall-clock execution time (excludes preparation).
    pub elapsed: Duration,
    /// Respecting mappings evaluated, summed across enumeration workers
    /// (`0` for the polynomial regimes — Corollary 2 and the §5
    /// approximation never enumerate mappings).
    pub mappings_evaluated: u64,
    /// Worker threads that participated in the mapping enumeration: `1`
    /// for the sequential path (the sequential fallback really does use one
    /// worker — the calling thread), more under
    /// [`EngineBuilder::parallelism`](crate::EngineBuilder::parallelism),
    /// `0` only for the regimes that never enumerate mappings.
    pub workers_used: u32,
    /// NE-constraint components of the database (the pairwise-distinct
    /// groups plus the isolated singletons) when a decomposed Theorem 1 /
    /// possible-answer enumeration ran; `0` for every other regime and
    /// for undecomposed enumerations.
    pub components: u32,
    /// Kernel mappings the free-null collapse *skipped*: the closed-form
    /// kernel count minus the canonical images actually evaluated
    /// (saturating; `0` when the decomposed path did not run).
    pub mappings_pruned: u64,
    /// Components whose decomposition analysis was served from the
    /// engine's cross-delta cache instead of re-analyzed (equals
    /// [`Evidence::components`] when the cache was warm, `0` on the run
    /// that populated it or when decomposition did not run).
    pub components_reused: u32,
    /// The answer was served from the engine's answer cache: no regime ran
    /// and no mappings were enumerated for this call (`mappings_evaluated`
    /// is 0); the regime/certificate fields describe the original
    /// computation the cached answer came from.
    pub cache_hit: bool,
    /// The database epoch the answer was computed at (see
    /// [`Engine::epoch`](crate::Engine::epoch)). Cache hits keep the epoch
    /// of the original computation — for the single-owner engine a
    /// retained entry may predate the current epoch (selective
    /// invalidation proved it still valid), while the epoch-keyed shared
    /// cache of [`SharedEngine`](crate::SharedEngine) only ever serves an
    /// entry to readers at exactly this epoch. This is what makes a
    /// concurrent repro report unambiguous: the epoch names the exact
    /// database state that produced the tuples.
    pub epoch: u64,
    /// `Some(n)`: this answer came out of an [`Engine::execute_batch`]
    /// group of `n` queries sharing **one** mapping enumeration —
    /// `mappings_evaluated` is that shared total (each mapping counted
    /// once for the whole group), not a per-query cost.
    ///
    /// [`Engine::execute_batch`]: crate::Engine::execute_batch
    pub shared_batch: Option<usize>,
}

impl Evidence {
    /// One-line human-readable summary, e.g.
    /// `auto → §5 approx, exact (Theorem 11 + Theorem 13), epoch 0` or
    /// `exact → Theorem 1, exact (Theorem 1), 15 mapping(s), 4 worker(s),
    /// epoch 2`, with `(cached)` appended on cache hits and the
    /// shared-enumeration batch size when the mappings were amortized
    /// across a batch. The epoch names the database state the answer was
    /// computed at, so concurrent repro reports are unambiguous.
    pub fn summary(&self) -> String {
        let mut s = format!("{} → {}, {}", self.requested, self.regime, self.certificate);
        if self.mappings_evaluated > 0 {
            s.push_str(&format!(", {} mapping(s)", self.mappings_evaluated));
            if let Some(n) = self.shared_batch {
                s.push_str(&format!(" shared across batch of {n}"));
            }
        }
        if self.components > 0 {
            s.push_str(&format!(
                ", {} component(s), {} mapping(s) pruned",
                self.components, self.mappings_pruned
            ));
            if self.components_reused > 0 {
                s.push_str(" (analysis reused)");
            }
        }
        if self.workers_used > 1 {
            s.push_str(&format!(", {} worker(s)", self.workers_used));
        }
        s.push_str(&format!(", epoch {}", self.epoch));
        if self.cache_hit {
            s.push_str(" (cached)");
        }
        s
    }
}

/// The result of executing a query: the answer tuples plus the
/// [`Evidence`] saying what they mean.
///
/// Tuples are over `Ph₁`-style element ids (element `i` is constant
/// `ConstId(i)`); use [`Engine::answer_names`](crate::Engine::answer_names)
/// to render them with constant names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answers {
    tuples: Relation,
    evidence: Evidence,
    upper_bound: Option<Relation>,
}

impl Answers {
    pub(crate) fn new(tuples: Relation, evidence: Evidence) -> Answers {
        Answers {
            tuples,
            evidence,
            upper_bound: None,
        }
    }

    pub(crate) fn with_upper_bound(mut self, upper: Relation) -> Answers {
        self.upper_bound = Some(upper);
        self
    }

    /// The answer as served from the engine's cache: identical tuples
    /// (and upper bound), original regime and certificate, but stamped
    /// `cache_hit` with zero new mappings — this call enumerated nothing.
    pub(crate) fn as_cache_hit(&self, elapsed: Duration) -> Answers {
        let mut hit = self.clone();
        hit.evidence.cache_hit = true;
        hit.evidence.mappings_evaluated = 0;
        hit.evidence.workers_used = 0;
        hit.evidence.components = 0;
        hit.evidence.mappings_pruned = 0;
        hit.evidence.components_reused = 0;
        hit.evidence.shared_batch = None;
        hit.evidence.elapsed = elapsed;
        hit
    }

    /// The answer tuples.
    pub fn tuples(&self) -> &Relation {
        &self.tuples
    }

    /// Consumes the result, keeping only the tuples.
    pub fn into_tuples(self) -> Relation {
        self.tuples
    }

    /// The evidence report.
    pub fn evidence(&self) -> &Evidence {
        &self.evidence
    }

    /// Number of answer tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff there are no answer tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// For a Boolean query: does the sentence hold under the executed
    /// semantics? (Non-empty answer relation — "certainly" under the exact
    /// regimes, "provably" under the sound approximation, "possibly" under
    /// possible-answer semantics.)
    pub fn holds(&self) -> bool {
        !self.tuples.is_empty()
    }

    /// True iff the certificate guarantees these tuples equal `Q(LB)`.
    pub fn is_exact(&self) -> bool {
        self.evidence.certificate.is_exact()
    }

    /// Under [`Certificate::BoundedPair`]: the certified *superset* of
    /// `Q(LB)` accompanying the lower-bound tuples (the engine refused an
    /// over-budget Theorem 1 enumeration and bracketed the answer instead).
    /// `None` for every other certificate. When the upper bound equals
    /// [`Answers::tuples`], the bracket is tight and the tuples *are*
    /// `Q(LB)` even though the enumeration never ran.
    pub fn upper_bound(&self) -> Option<&Relation> {
        self.upper_bound.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        for s in Semantics::ALL {
            assert_eq!(Semantics::parse(s.name()), Some(s));
        }
        assert_eq!(Semantics::parse("approximate"), Some(Semantics::Approx));
        assert_eq!(Semantics::parse("bogus"), None);
    }

    #[test]
    fn exactness_of_certificates() {
        assert!(Certificate::ExactTheorem1.is_exact());
        assert!(Certificate::ExactCorollary2.is_exact());
        assert!(Certificate::ExactCompleteness(CompletenessTheorem::PositiveQuery).is_exact());
        assert!(!Certificate::SoundLowerBound.is_exact());
        assert!(!Certificate::PossibleUpperBound.is_exact());
        assert!(!Certificate::BoundedPair.is_exact());
    }

    #[test]
    fn summary_mentions_regime_mappings_and_workers() {
        let mut ev = Evidence {
            requested: Semantics::Exact,
            regime: Regime::Theorem1,
            certificate: Certificate::ExactTheorem1,
            elapsed: Duration::from_millis(1),
            mappings_evaluated: 15,
            workers_used: 1,
            components: 0,
            mappings_pruned: 0,
            components_reused: 0,
            cache_hit: false,
            shared_batch: None,
            epoch: 3,
        };
        let s = ev.summary();
        assert!(s.contains("Theorem 1"), "{s}");
        assert!(s.contains("15 mapping(s)"), "{s}");
        assert!(s.contains("epoch 3"), "{s}");
        // Single-worker runs don't advertise the pool…
        assert!(!s.contains("worker"), "{s}");
        assert!(!s.contains("cached"), "{s}");
        assert!(!s.contains("batch"), "{s}");
        // …and undecomposed runs don't advertise components.
        assert!(!s.contains("component"), "{s}");
        // Decomposed runs report components, pruning, and analysis reuse.
        ev.components = 2;
        ev.mappings_pruned = 7;
        let s = ev.summary();
        assert!(s.contains("2 component(s), 7 mapping(s) pruned"), "{s}");
        assert!(!s.contains("analysis reused"), "{s}");
        ev.components_reused = 2;
        assert!(
            ev.summary().contains("(analysis reused)"),
            "{}",
            ev.summary()
        );
        ev.components = 0;
        ev.mappings_pruned = 0;
        ev.components_reused = 0;
        // …multi-worker runs do.
        ev.workers_used = 4;
        assert!(ev.summary().contains("4 worker(s)"), "{}", ev.summary());
        // Batch-shared enumerations and cache hits are both visible.
        ev.shared_batch = Some(3);
        assert!(
            ev.summary()
                .contains("15 mapping(s) shared across batch of 3"),
            "{}",
            ev.summary()
        );
        ev.cache_hit = true;
        assert!(ev.summary().ends_with("(cached)"), "{}", ev.summary());
    }
}
