//! Durability for the serving stack: a [`SharedEngine`] backed by a
//! [`qld_wal::Wal`], with crash recovery by checkpoint-plus-replay.
//!
//! The engine side of the story is small because `Engine::apply` is
//! deterministic and differential-tested against rebuild: persisting the
//! delta sequence *is* persisting the database. This module provides the
//! glue:
//!
//! * [`SharedEngine::durable`] attaches a fresh WAL to an engine and
//!   seeds it with a checkpoint of the current database, so the log
//!   directory is self-contained from the first byte;
//! * every changing [`SharedEngine::apply`] then appends one
//!   [`WalRecord`] **before** the new snapshot is published
//!   (log-before-publish) — under [`FsyncPolicy::Always`] an
//!   acknowledged epoch is always durable;
//! * [`SharedEngine::recover_with`] rebuilds after a crash: newest valid
//!   checkpoint → database → replay the record tail through the ordinary
//!   `apply` path, asserting each record lands on exactly the epoch it
//!   was logged at;
//! * periodic checkpoints (every [`DurabilityConfig::checkpoint_every`]
//!   changing deltas) bound replay time and let the WAL truncate old
//!   segments.
//!
//! The recovery invariant — an engine recovered after a crash at *any*
//! byte offset equals a solo engine rebuilt from some prefix of the
//! applied deltas, and under `Always` that prefix covers every
//! acknowledged delta — is exercised exhaustively in
//! `tests/wal_recovery.rs` with [`qld_wal::FaultyStorage`].
//!
//! [`FsyncPolicy::Always`]: qld_wal::FsyncPolicy::Always

use crate::concurrent::SharedEngine;
use crate::delta::Delta;
use crate::error::EngineError;
use crate::session::Engine;
use qld_core::CwDatabase;
use qld_logic::{ConstId, PredId};
use qld_wal::{Wal, WalConfig, WalRecord, WalStats};
use std::fmt;
use std::io;

/// How a [`SharedEngine`] uses its WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// The log's own knobs: fsync policy and segment size.
    pub wal: WalConfig,
    /// Write a database checkpoint (and truncate older log state) every
    /// this many changing deltas; `0` disables automatic checkpoints
    /// (the seed checkpoint at attach time is still written).
    pub checkpoint_every: u64,
}

impl Default for DurabilityConfig {
    fn default() -> DurabilityConfig {
        DurabilityConfig {
            wal: WalConfig::default(),
            checkpoint_every: 256,
        }
    }
}

/// What a recovery did, for operators and tests (`qld recover` prints
/// it; `:stats` carries the counters via [`WalStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The epoch of the checkpoint the database was rebuilt from.
    pub checkpoint_epoch: u64,
    /// Records replayed on top of the checkpoint.
    pub records_replayed: u64,
    /// Whole records dropped because they sat beyond a corrupt frame.
    pub records_truncated: u64,
    /// Torn/corrupt bytes discarded from the log tail.
    pub bytes_truncated: u64,
    /// The epoch the recovered engine resumed at.
    pub epoch: u64,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovered epoch {} (checkpoint at {}, {} record(s) replayed, \
             {} record(s) / {} byte(s) truncated)",
            self.epoch,
            self.checkpoint_epoch,
            self.records_replayed,
            self.records_truncated,
            self.bytes_truncated
        )
    }
}

/// The WAL plus its checkpoint cadence, held behind the writer path of a
/// [`SharedEngine`].
#[derive(Debug)]
pub(crate) struct DurableState {
    wal: Wal,
    checkpoint_every: u64,
    since_checkpoint: u64,
}

impl DurableState {
    /// Appends the record for a just-applied changing delta, then writes
    /// a checkpoint (stamped with the serving `generation`) if the
    /// cadence says so. Called with the writer lock held, before the
    /// snapshot is published.
    pub(crate) fn log(
        &mut self,
        delta: &Delta,
        engine: &Engine,
        generation: u64,
    ) -> io::Result<()> {
        self.wal.append(&delta_to_record(delta, engine.epoch()))?;
        self.since_checkpoint += 1;
        if self.checkpoint_every > 0 && self.since_checkpoint >= self.checkpoint_every {
            self.checkpoint(engine, generation)?;
        }
        Ok(())
    }

    /// Serializes the engine's database and checkpoints the log at its
    /// epoch, under the primary generation currently being served.
    pub(crate) fn checkpoint(&mut self, engine: &Engine, generation: u64) -> io::Result<()> {
        let payload = qld_core::textio::to_text(engine.db());
        self.wal
            .checkpoint(engine.epoch(), generation, payload.as_bytes())?;
        self.since_checkpoint = 0;
        Ok(())
    }

    pub(crate) fn stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Read-only view of the live log tail, for replication catch-up.
    pub(crate) fn tail(&self) -> io::Result<(Option<qld_wal::Checkpoint>, Vec<WalRecord>)> {
        self.wal.tail()
    }
}

fn durability_err(e: io::Error) -> EngineError {
    EngineError::Durability(e.to_string())
}

/// Serializes a changing delta as the storage-neutral WAL record for the
/// epoch it produced. Shared with the replication hooks in
/// `concurrent.rs` — the feed streams exactly these records.
pub(crate) fn delta_to_record(delta: &Delta, epoch: u64) -> WalRecord {
    WalRecord {
        epoch,
        facts: delta
            .facts
            .iter()
            .map(|(p, args)| (p.0, args.iter().map(|c| c.0).collect()))
            .collect(),
        ne_pairs: delta.ne_pairs.iter().map(|(a, b)| (a.0, b.0)).collect(),
    }
}

/// The inverse of [`delta_to_record`], for replay and replication.
pub(crate) fn record_to_delta(record: &WalRecord) -> Delta {
    Delta {
        facts: record
            .facts
            .iter()
            .map(|(p, args)| {
                (
                    PredId(*p),
                    args.iter().map(|c| ConstId(*c)).collect::<Vec<_>>().into(),
                )
            })
            .collect(),
        ne_pairs: record
            .ne_pairs
            .iter()
            .map(|(a, b)| (ConstId(*a), ConstId(*b)))
            .collect(),
    }
}

impl SharedEngine {
    /// Wraps an engine for concurrent serving **with durability**: opens
    /// the WAL in `storage` (which must not already hold log state — use
    /// [`SharedEngine::recover_with`] after a crash), writes a seed
    /// checkpoint of the engine's current database, and logs every
    /// subsequent changing delta before publishing it.
    pub fn durable(
        engine: Engine,
        storage: Box<dyn qld_wal::Storage>,
        config: DurabilityConfig,
    ) -> Result<SharedEngine, EngineError> {
        let (mut wal, recovery) = Wal::open(storage, config.wal).map_err(durability_err)?;
        if recovery.checkpoint.is_some() || !recovery.records.is_empty() {
            return Err(EngineError::Durability(
                "WAL directory already holds state; recover from it instead of seeding a new log"
                    .to_string(),
            ));
        }
        // Seed checkpoint: the directory is self-contained from now on —
        // recovery never needs the original database file. A fresh
        // primary starts at generation 1 (generation 0 is reserved for
        // legacy checkpoints written before fencing existed).
        let payload = qld_core::textio::to_text(engine.db());
        wal.checkpoint(engine.epoch(), 1, payload.as_bytes())
            .map_err(durability_err)?;
        let state = DurableState {
            wal,
            checkpoint_every: config.checkpoint_every,
            since_checkpoint: 0,
        };
        Ok(SharedEngine::with_wal(engine, state, 1))
    }

    /// Rebuilds a durable engine from whatever the log holds: the newest
    /// valid checkpoint's database (handed to `build` so the caller
    /// configures semantics/parallelism/cache as usual), the checkpoint
    /// epoch restored, and every surviving record replayed through the
    /// ordinary [`Engine::apply`] path. Returns the serving engine (the
    /// WAL stays attached and continues at the log tail) and a
    /// [`RecoveryReport`].
    ///
    /// Every replayed record must land on exactly the epoch it was
    /// logged at — a mismatch means the log does not describe a delta
    /// history of this database and recovery refuses to guess.
    pub fn recover_with<F>(
        storage: Box<dyn qld_wal::Storage>,
        config: DurabilityConfig,
        build: F,
    ) -> Result<(SharedEngine, RecoveryReport), EngineError>
    where
        F: FnOnce(CwDatabase) -> Engine,
    {
        let (wal, recovery) = Wal::open(storage, config.wal).map_err(durability_err)?;
        let checkpoint = recovery.checkpoint.ok_or_else(|| {
            EngineError::Durability(
                "no valid checkpoint in the WAL directory (not a WAL, or its seed \
                 checkpoint was destroyed)"
                    .to_string(),
            )
        })?;
        let text = String::from_utf8(checkpoint.payload).map_err(|_| {
            EngineError::Durability("checkpoint payload is not UTF-8 database text".to_string())
        })?;
        let db = qld_core::textio::from_text(&text)
            .map_err(|e| EngineError::Durability(format!("checkpoint database invalid: {e}")))?;
        let mut engine = build(db);
        engine.set_epoch(checkpoint.epoch);
        for record in &recovery.records {
            let report = engine.apply(&record_to_delta(record))?;
            if report.epoch != record.epoch {
                return Err(EngineError::Durability(format!(
                    "replay diverged: record logged at epoch {} landed on epoch {}",
                    record.epoch, report.epoch
                )));
            }
        }
        let report = RecoveryReport {
            checkpoint_epoch: checkpoint.epoch,
            records_replayed: recovery.records.len() as u64,
            records_truncated: recovery.records_truncated,
            bytes_truncated: recovery.bytes_truncated,
            epoch: engine.epoch(),
        };
        let state = DurableState {
            wal,
            checkpoint_every: config.checkpoint_every,
            since_checkpoint: 0,
        };
        // Resume under the generation the checkpoint was written at;
        // legacy pre-fencing checkpoints (generation 0) resume as 1.
        let generation = checkpoint.generation.max(1);
        Ok((SharedEngine::with_wal(engine, state, generation), report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::Semantics;
    use qld_logic::Vocabulary;
    use qld_wal::{has_state, FaultPlan, FaultyStorage, FsyncPolicy, MemStorage, Storage as _};

    fn small_db() -> CwDatabase {
        let mut voc = Vocabulary::new();
        voc.add_consts(["a", "b", "c"]).unwrap();
        voc.add_pred("P", 1).unwrap();
        voc.add_pred("R", 2).unwrap();
        CwDatabase::builder(voc).build().unwrap()
    }

    fn ids(shared: &SharedEngine) -> (PredId, PredId, Vec<ConstId>) {
        let snap = shared.snapshot();
        let voc = snap.engine().db().voc();
        (
            voc.pred_id("P").unwrap(),
            voc.pred_id("R").unwrap(),
            ["a", "b", "c"]
                .iter()
                .map(|c| voc.const_id(c).unwrap())
                .collect(),
        )
    }

    #[test]
    fn record_conversion_round_trips() {
        let delta = Delta::new()
            .insert_fact(PredId(2), &[ConstId(0), ConstId(1)])
            .assert_ne(ConstId(0), ConstId(2));
        let record = delta_to_record(&delta, 17);
        assert_eq!(record.epoch, 17);
        let back = record_to_delta(&record);
        assert_eq!(back.facts, delta.facts);
        assert_eq!(back.ne_pairs, delta.ne_pairs);
    }

    #[test]
    fn durable_engine_logs_and_recovers_identically() {
        let mem = MemStorage::new();
        let shared = SharedEngine::durable(
            Engine::new(small_db()),
            Box::new(mem.clone()),
            DurabilityConfig::default(),
        )
        .unwrap();
        let (p, r, c) = ids(&shared);
        shared.apply(&Delta::new().insert_fact(p, &[c[0]])).unwrap();
        shared
            .apply(&Delta::new().insert_fact(r, &[c[0], c[1]]))
            .unwrap();
        shared.apply(&Delta::new().assert_ne(c[0], c[2])).unwrap();
        // Duplicates are not logged.
        shared.apply(&Delta::new().insert_fact(p, &[c[0]])).unwrap();
        assert_eq!(shared.epoch(), 3);
        let stats = shared.wal_stats().unwrap();
        assert_eq!(stats.records_appended, 3);
        assert_eq!(stats.checkpoints, 1, "seed checkpoint only");
        assert!(stats.fsyncs >= 3, "Always syncs per record");
        drop(shared);

        let (recovered, report) = SharedEngine::recover_with(
            Box::new(mem.clone()),
            DurabilityConfig::default(),
            Engine::new,
        )
        .unwrap();
        assert_eq!(report.checkpoint_epoch, 0);
        assert_eq!(report.records_replayed, 3);
        assert_eq!(report.epoch, 3);
        assert_eq!(recovered.epoch(), 3);
        let line = report.to_string();
        assert!(line.contains("recovered epoch 3"), "{line}");

        // The recovered engine answers like the original across
        // semantics.
        let mut session = recovered.session();
        for (text, semantics) in [
            ("(x) . P(x)", Semantics::Auto),
            ("(x) . !P(x)", Semantics::Exact),
            ("(x, y) . R(x, y)", Semantics::Possible),
            ("(x) . x != a", Semantics::Approx),
        ] {
            let q = session.prepare_text(text).unwrap();
            let ans = session.execute_as(&q, semantics).unwrap();
            assert_eq!(ans.evidence().epoch, 3, "{text}");
        }
        // And it keeps logging: a fourth delta lands in the same WAL.
        let (p, _, c) = ids(&recovered);
        recovered
            .apply(&Delta::new().insert_fact(p, &[c[1]]))
            .unwrap();
        assert_eq!(recovered.epoch(), 4);
        drop(recovered);
        let (_, report) =
            SharedEngine::recover_with(Box::new(mem), DurabilityConfig::default(), Engine::new)
                .unwrap();
        assert_eq!(report.epoch, 4);
        assert_eq!(report.records_replayed, 4);
    }

    #[test]
    fn automatic_checkpoints_bound_replay() {
        let mem = MemStorage::new();
        let config = DurabilityConfig {
            checkpoint_every: 2,
            ..DurabilityConfig::default()
        };
        let shared =
            SharedEngine::durable(Engine::new(small_db()), Box::new(mem.clone()), config).unwrap();
        let (p, r, c) = ids(&shared);
        shared.apply(&Delta::new().insert_fact(p, &[c[0]])).unwrap();
        shared.apply(&Delta::new().insert_fact(p, &[c[1]])).unwrap();
        shared.apply(&Delta::new().insert_fact(p, &[c[2]])).unwrap();
        let stats = shared.wal_stats().unwrap();
        assert_eq!(stats.checkpoints, 2, "seed + one automatic");
        drop(shared);

        let (recovered, report) =
            SharedEngine::recover_with(Box::new(mem), config, Engine::new).unwrap();
        assert_eq!(report.checkpoint_epoch, 2);
        assert_eq!(report.records_replayed, 1, "only the post-checkpoint tail");
        assert_eq!(recovered.epoch(), 3);
        // The checkpointed database carries the first two facts.
        let mut session = recovered.session();
        let q = session.prepare_text("(x) . P(x)").unwrap();
        assert_eq!(session.execute(&q).unwrap().len(), 3);
        let _ = r;
    }

    #[test]
    fn durable_refuses_a_dirty_directory_and_recover_refuses_an_empty_one() {
        let mem = MemStorage::new();
        let shared = SharedEngine::durable(
            Engine::new(small_db()),
            Box::new(mem.clone()),
            DurabilityConfig::default(),
        )
        .unwrap();
        drop(shared);
        let err = SharedEngine::durable(
            Engine::new(small_db()),
            Box::new(mem.clone()),
            DurabilityConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Durability(_)));
        assert!(err.to_string().contains("already holds state"), "{err}");

        let err = SharedEngine::recover_with(
            Box::new(MemStorage::new()),
            DurabilityConfig::default(),
            Engine::new,
        )
        .unwrap_err();
        assert!(err.to_string().contains("no valid checkpoint"), "{err}");
    }

    #[test]
    fn torn_seed_checkpoint_reseeds_instead_of_wedging() {
        // Crash in the middle of the very first (seed) checkpoint
        // write: the directory holds a segment header and a torn ckpt
        // file. That is not recoverable state — `has_state` must report
        // the directory as empty so the serve front-end re-seeds it,
        // rather than taking the recover path and refusing to start
        // until an operator wipes the directory by hand.
        let mem = MemStorage::new();
        let faulty = FaultyStorage::new(mem.clone(), FaultPlan::crash_after_bytes(20));
        let err = SharedEngine::durable(
            Engine::new(small_db()),
            Box::new(faulty),
            DurabilityConfig::default(),
        );
        assert!(err.is_err(), "the injected crash fails the seed");
        assert!(
            mem.list().unwrap().iter().any(|n| n.ends_with(".ck")),
            "a torn checkpoint file is left behind"
        );
        assert!(!has_state(&mem).unwrap(), "torn seed is not state");

        // Seeding over the debris succeeds and produces a working log.
        let shared = SharedEngine::durable(
            Engine::new(small_db()),
            Box::new(mem.clone()),
            DurabilityConfig::default(),
        )
        .unwrap();
        let (p, _, c) = ids(&shared);
        shared.apply(&Delta::new().insert_fact(p, &[c[0]])).unwrap();
        drop(shared);
        let (recovered, report) =
            SharedEngine::recover_with(Box::new(mem), DurabilityConfig::default(), Engine::new)
                .unwrap();
        assert_eq!(report.records_replayed, 1);
        assert_eq!(recovered.epoch(), 1);
    }

    #[test]
    fn wal_append_failure_fails_apply_without_publishing() {
        // Seed a clean WAL directory, then reopen it through a faulty
        // storage that dies on the very first append. Recovery after a
        // clean checkpoint appends nothing, so the crash lands exactly on
        // the first logged delta.
        let mem = MemStorage::new();
        let shared = SharedEngine::durable(
            Engine::new(small_db()),
            Box::new(mem.clone()),
            DurabilityConfig::default(),
        )
        .unwrap();
        drop(shared);
        let faulty = FaultyStorage::new(mem.clone(), FaultPlan::crash_after_bytes(0));
        let (shared, _) =
            SharedEngine::recover_with(Box::new(faulty), DurabilityConfig::default(), Engine::new)
                .unwrap();
        let (p, _, c) = ids(&shared);
        let err = shared
            .apply(&Delta::new().insert_fact(p, &[c[0]]))
            .unwrap_err();
        assert!(matches!(err, EngineError::Durability(_)), "{err}");
        // Log-before-publish: the failed delta was never published, and
        // the write path is poisoned from here on.
        assert_eq!(shared.epoch(), 0);
        assert!(shared.wal_poisoned());
        // And recovery of the surviving bytes sees the seed state only.
        let (recovered, report) =
            SharedEngine::recover_with(Box::new(mem), DurabilityConfig::default(), Engine::new)
                .unwrap();
        assert_eq!(report.records_replayed, 0);
        assert_eq!(recovered.epoch(), 0);
    }

    #[test]
    fn transient_wal_failure_poisons_all_subsequent_writes() {
        // Seed a clean WAL, then reopen it through a storage that fails
        // exactly one append *transiently* — the medium recovers, think
        // ENOSPC. The failed apply leaves the writer engine one delta
        // ahead of the log; were a later apply allowed to proceed, it
        // would log a record with a gapped epoch and recovery would
        // refuse the whole tail ("replay diverged"), losing every acked
        // write since the checkpoint. The poison flag forbids it.
        let mem = MemStorage::new();
        let shared = SharedEngine::durable(
            Engine::new(small_db()),
            Box::new(mem.clone()),
            DurabilityConfig::default(),
        )
        .unwrap();
        drop(shared);
        let faulty = FaultyStorage::new(mem.clone(), FaultPlan::fail_append(1));
        let (shared, _) =
            SharedEngine::recover_with(Box::new(faulty), DurabilityConfig::default(), Engine::new)
                .unwrap();
        let (p, _, c) = ids(&shared);
        assert!(!shared.wal_poisoned());
        let err = shared
            .apply(&Delta::new().insert_fact(p, &[c[0]]))
            .unwrap_err();
        assert!(matches!(err, EngineError::Durability(_)), "{err}");
        assert!(shared.wal_poisoned());

        // The storage is healthy again, but the engine must never trust
        // it: the next apply fails fast, before touching the writer…
        let err = shared
            .apply(&Delta::new().insert_fact(p, &[c[1]]))
            .unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        // …and so does an explicit checkpoint (it would persist the
        // unlogged delta under a gapped epoch).
        let err = shared.checkpoint_now().unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        // Reads keep working at the last durable epoch.
        assert_eq!(shared.epoch(), 0);
        let mut session = shared.session();
        let q = session.prepare_text("(x) . P(x)").unwrap();
        assert_eq!(session.execute(&q).unwrap().evidence().epoch, 0);
        drop(shared);

        // Recovery sees exactly the durable prefix: no gapped record,
        // no divergence, nothing acked lost (nothing was acked).
        let (recovered, report) =
            SharedEngine::recover_with(Box::new(mem), DurabilityConfig::default(), Engine::new)
                .unwrap();
        assert_eq!(report.records_replayed, 0);
        assert_eq!(recovered.epoch(), 0);
        assert!(!recovered.wal_poisoned());
    }

    #[test]
    fn fsync_policies_flow_through_the_config() {
        let mem = MemStorage::new();
        let config = DurabilityConfig {
            wal: WalConfig {
                fsync: FsyncPolicy::Never,
                ..WalConfig::default()
            },
            ..DurabilityConfig::default()
        };
        let shared =
            SharedEngine::durable(Engine::new(small_db()), Box::new(mem.clone()), config).unwrap();
        let (p, _, c) = ids(&shared);
        let before = shared.wal_stats().unwrap().fsyncs;
        shared.apply(&Delta::new().insert_fact(p, &[c[0]])).unwrap();
        shared.apply(&Delta::new().insert_fact(p, &[c[1]])).unwrap();
        assert_eq!(
            shared.wal_stats().unwrap().fsyncs,
            before,
            "Never policy issues no per-record syncs"
        );
    }
}
