//! The [`Engine`] session type and its builder.

use crate::error::EngineError;
use crate::evidence::{Answers, Certificate, Evidence, Regime, Semantics};
use crate::prepared::PreparedQuery;
use qld_algebra::{compile_query_ordered, execute, optimize};
use qld_approx::{exactness_theorem, AlphaMode, ApproxEngine, Backend, CompletenessTheorem};
use qld_core::exact::{
    certain_answers_batch_with, certain_answers_with, possible_answers_batch_with,
    possible_answers_with, EvalStats, ExactOptions, MappingStrategy,
};
use qld_core::mappings::{count_kernel_mappings_up_to, ParallelConfig};
use qld_core::ph::ph1;
use qld_core::CwDatabase;
use qld_logic::parser::parse_query;
use qld_logic::{Formula, Query};
use qld_physical::{eval_query, Elem, PhysicalDb, Relation, TupleSpace};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(0);

/// Hard cap on cached answers per engine. When full, an arbitrary entry
/// is evicted per insert — crude but bounded; an LRU policy is a roadmap
/// item. At the default the cache stays useful for any realistic
/// prepared-query working set while a many-distinct-query adversary
/// cannot grow it without bound.
const ANSWER_CACHE_CAPACITY: usize = 4096;

/// The engine's interior-mutability answer cache: finished [`Answers`]
/// keyed by `(prepared-query fingerprint, semantics)`, with the source
/// [`Query`] stored alongside each entry and compared on lookup — a
/// fingerprint collision between structurally different queries is a
/// cache *miss*, never a wrong answer. Every other input that could
/// change an answer — the database, backend, alpha mode, NE store,
/// mapping strategy, Corollary 2 toggle, mapping budget — is fixed at
/// engine construction, so it needs no spot in the key; the
/// answer-irrelevant knobs (parallelism, default semantics) are deliberately
/// excluded. The cache must be explicitly invalidated by anything that
/// mutates the database (see [`Engine::invalidate_cache`]).
#[derive(Debug)]
struct AnswerCache {
    enabled: AtomicBool,
    map: Mutex<HashMap<(u64, Semantics), (Query, Answers)>>,
}

impl AnswerCache {
    fn new(enabled: bool) -> AnswerCache {
        AnswerCache {
            enabled: AtomicBool::new(enabled),
            map: Mutex::new(HashMap::new()),
        }
    }

    fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// A hit returns the stored answer re-stamped as cached (`cache_hit`
    /// true, zero mappings, the lookup's elapsed time).
    fn lookup(&self, prepared: &PreparedQuery, semantics: Semantics) -> Option<Answers> {
        if !self.is_enabled() {
            return None;
        }
        let start = Instant::now();
        let map = self.map.lock().expect("answer cache poisoned");
        map.get(&(prepared.fingerprint, semantics))
            .filter(|(query, _)| *query == prepared.query)
            .map(|(_, answers)| answers.as_cache_hit(start.elapsed()))
    }

    fn insert(&self, prepared: &PreparedQuery, semantics: Semantics, answers: &Answers) {
        self.insert_with_capacity(prepared, semantics, answers, ANSWER_CACHE_CAPACITY);
    }

    fn insert_with_capacity(
        &self,
        prepared: &PreparedQuery,
        semantics: Semantics,
        answers: &Answers,
        capacity: usize,
    ) {
        if !self.is_enabled() {
            return;
        }
        let mut map = self.map.lock().expect("answer cache poisoned");
        let key = (prepared.fingerprint, semantics);
        if map.len() >= capacity && !map.contains_key(&key) {
            if let Some(evict) = map.keys().next().copied() {
                map.remove(&evict);
            }
        }
        map.insert(key, (prepared.query.clone(), answers.clone()));
    }

    fn clear(&self) {
        self.map.lock().expect("answer cache poisoned").clear();
    }

    fn len(&self) -> usize {
        self.map.lock().expect("answer cache poisoned").len()
    }
}

/// What one evaluation run produced, before packaging into [`Answers`].
struct RunOutcome {
    tuples: Relation,
    regime: Regime,
    certificate: Certificate,
    stats: EvalStats,
    /// Certified upper bound, set only by the over-budget bounded pair.
    upper: Option<Relation>,
}

impl RunOutcome {
    /// An outcome from a polynomial regime: no mappings enumerated, no
    /// workers, no upper bound.
    fn polynomial(tuples: Relation, regime: Regime, certificate: Certificate) -> RunOutcome {
        RunOutcome {
            tuples,
            regime,
            certificate,
            stats: EvalStats::default(),
            upper: None,
        }
    }
}

/// Which shared enumeration a batched execution joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EnumerationKind {
    /// The Theorem 1 intersection (certain answers).
    Certain,
    /// The possible-answer union dual.
    Possible,
}

/// Packages a run's outcome as [`Answers`] with full [`Evidence`].
fn package(
    outcome: RunOutcome,
    semantics: Semantics,
    shared_batch: Option<usize>,
    start: Instant,
) -> Answers {
    let answers = Answers::new(
        outcome.tuples,
        Evidence {
            requested: semantics,
            regime: outcome.regime,
            certificate: outcome.certificate,
            elapsed: start.elapsed(),
            mappings_evaluated: outcome.stats.mappings_evaluated,
            workers_used: outcome.stats.workers_used,
            cache_hit: false,
            shared_batch,
        },
    );
    match outcome.upper {
        Some(upper) => answers.with_upper_bound(upper),
        None => answers,
    }
}

/// How the engine stores the `NE` inequality relation for the §5 path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NeStoreMode {
    /// Materialize `NE` as an explicit `O(|C|²)` relation (the default).
    #[default]
    Explicit,
    /// The virtual representation §5 closes with: keep only `NE′` and the
    /// unknown-marker `U`, and expand `NE(x,y)` atoms into
    /// `NE′(x,y) ∨ (¬U(x) ∧ ¬U(y) ∧ ¬(x = y))` at rewrite time.
    Virtual,
}

/// Immutable evaluation configuration, set by [`EngineBuilder`].
#[derive(Debug, Clone, Copy, Default)]
struct EngineConfig {
    backend: Backend,
    alpha: AlphaMode,
    ne_store: NeStoreMode,
    strategy: MappingStrategy,
    corollary2_fast_path: bool,
    parallel: ParallelConfig,
    /// `Some(b)`: under [`Semantics::Auto`], refuse Theorem 1 escalations
    /// whose kernel-mapping count exceeds `b` and return certified bounds
    /// instead. `None` (the default) escalates unconditionally.
    mapping_budget: Option<u64>,
    /// Whether the answer cache starts enabled.
    answer_cache: bool,
}

/// Configures and constructs an [`Engine`]. Obtained from
/// [`Engine::builder`]; every knob has a sensible default
/// ([`Semantics::Auto`], naive backend, materialized `α_P`, explicit `NE`,
/// kernel mapping enumeration, Corollary 2 fast path on).
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    db: CwDatabase,
    semantics: Semantics,
    config: EngineConfig,
}

impl EngineBuilder {
    fn new(db: CwDatabase) -> EngineBuilder {
        EngineBuilder {
            db,
            semantics: Semantics::default(),
            config: EngineConfig {
                corollary2_fast_path: true,
                answer_cache: true,
                ..EngineConfig::default()
            },
        }
    }

    /// The session's default answer semantics (overridable per call with
    /// [`Engine::execute_as`]).
    pub fn semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Which machinery evaluates the §5 rewrite `Q̂`: the naive Tarskian
    /// evaluator or the relational-algebra engine.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// How `¬P(x̄)` is realized in `Q̂`: a scan of the materialized `α_P`
    /// relation, or the literal Lemma 10 formula.
    pub fn alpha_mode(mut self, alpha: AlphaMode) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Explicit or virtual `NE` storage for the §5 path.
    pub fn ne_store(mut self, mode: NeStoreMode) -> Self {
        self.config.ne_store = mode;
        self
    }

    /// Mapping enumeration strategy for the Theorem 1 (and possible-world)
    /// paths: kernel-canonical (default) or raw respecting mappings.
    pub fn mapping_strategy(mut self, strategy: MappingStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Worker threads for the Theorem 1 / possible-answer mapping
    /// enumeration: `1` is sequential, `0` means one worker per available
    /// CPU. Defaults to the `QLD_THREADS` environment variable (else
    /// sequential). Answers are bit-identical at any thread count;
    /// [`Evidence`](crate::Evidence) reports `workers_used` and the
    /// mapping total summed across workers.
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.config.parallel = ParallelConfig::new(threads);
        self
    }

    /// Enables/disables the Corollary 2 fast path under
    /// [`Semantics::Exact`] (on by default; [`Semantics::Auto`] always
    /// uses it on fully specified databases — that is its certificate).
    pub fn corollary2_fast_path(mut self, enabled: bool) -> Self {
        self.config.corollary2_fast_path = enabled;
        self
    }

    /// Caps how many kernel mappings an [`Semantics::Auto`] escalation may
    /// enumerate. When the database's kernel count exceeds the budget, the
    /// engine refuses the hopeless Theorem 1 run and returns the certified
    /// bracket instead: the §5 lower bound as the tuples, plus a certified
    /// upper bound (see [`Certificate::BoundedPair`] and
    /// [`Answers::upper_bound`]) — both polynomial. The budget probe
    /// itself is cheap: the kernel tree is counted with early abort at
    /// `budget + 1`, once per engine. Unset by default (always escalate).
    pub fn mapping_budget(mut self, budget: u64) -> Self {
        self.config.mapping_budget = Some(budget);
        self
    }

    /// Enables/disables the answer cache (on by default): finished answers
    /// are stored per `(prepared query, semantics)` and repeated executions
    /// are served back without re-running any regime, marked with
    /// [`Evidence::cache_hit`]. Can also be toggled on a live engine with
    /// [`Engine::set_cache_enabled`].
    pub fn answer_cache(mut self, enabled: bool) -> Self {
        self.config.answer_cache = enabled;
        self
    }

    /// Finalizes the engine.
    pub fn build(self) -> Engine {
        Engine {
            id: NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed),
            db: self.db,
            semantics: self.semantics,
            cache: AnswerCache::new(self.config.answer_cache),
            config: self.config,
            approx: OnceLock::new(),
            ph1: OnceLock::new(),
            kernel_count: OnceLock::new(),
        }
    }
}

/// A query-evaluation session over one closed-world logical database.
///
/// `Engine` is the single front door to every evaluation regime the paper
/// describes. Queries are [`prepare`](Engine::prepare)d once (parse,
/// validate, classify, rewrite to `Q̂`, compile to algebra) and executed
/// many times under any [`Semantics`]; every answer carries an
/// [`Evidence`] report with an exactness [`Certificate`].
///
/// # Which theorem justifies which certificate
///
/// | Certificate | Paper result | When issued |
/// |---|---|---|
/// | [`Certificate::ExactTheorem1`] | Theorem 1 | the full mapping enumeration ran (`Exact` semantics off the fast path, or `Auto` escalation) |
/// | [`Certificate::ExactCorollary2`] | Corollary 2 | the database is fully specified and one evaluation over `Ph₁(LB)` answered the query |
/// | [`Certificate::ExactCompleteness`]`(`[`CompletenessTheorem::FullySpecified`]`)` | Theorems 11 + 12 | the §5 approximation ran on a fully specified database |
/// | [`Certificate::ExactCompleteness`]`(`[`CompletenessTheorem::PositiveQuery`]`)` | Theorems 11 + 13 | the §5 approximation ran on a positive first-order query |
/// | [`Certificate::SoundLowerBound`] | Theorem 11 | the §5 approximation ran and no completeness theorem applies |
/// | [`Certificate::PossibleUpperBound`] | dual of Theorem 1 | possible-answer semantics ran |
///
/// Under [`Semantics::Auto`] the engine never returns an uncertified
/// answer: it picks Corollary 2 on fully specified databases, the §5
/// approximation (exact by Theorem 13) on positive first-order queries,
/// and escalates to the Theorem 1 enumeration only when neither
/// completeness theorem applies.
///
/// # Example
///
/// ```
/// use qld_engine::{Engine, Semantics};
/// use qld_core::CwDatabase;
/// use qld_logic::Vocabulary;
///
/// let mut voc = Vocabulary::new();
/// let ids = voc.add_consts(["socrates", "plato", "mystery"]).unwrap();
/// let teaches = voc.add_pred("TEACHES", 2).unwrap();
/// let db = CwDatabase::builder(voc)
///     .fact(teaches, &[ids[0], ids[1]])
///     .unique(ids[0], ids[1])
///     .build()
///     .unwrap();
///
/// let engine = Engine::builder(db).semantics(Semantics::Auto).build();
/// let prepared = engine.prepare_text("(x) . TEACHES(socrates, x)").unwrap();
/// let answers = engine.execute(&prepared).unwrap();
/// assert!(answers.is_exact()); // positive query → Theorem 13 certificate
/// assert_eq!(engine.answer_names(&answers), vec![vec!["plato"]]);
/// ```
#[derive(Debug)]
pub struct Engine {
    id: u64,
    db: CwDatabase,
    semantics: Semantics,
    config: EngineConfig,
    /// §5 machinery (`Ph₂(LB)`, `α_P`, `NE`), built on first use.
    approx: OnceLock<ApproxEngine>,
    /// `Ph₁(LB)`, cached for the Corollary 2 fast path.
    ph1: OnceLock<PhysicalDb>,
    /// Kernel-mapping count probed against `config.mapping_budget`,
    /// computed once with early abort at `budget + 1`.
    kernel_count: OnceLock<u64>,
    /// The answer cache (see [`AnswerCache`]).
    cache: AnswerCache,
}

impl Clone for Engine {
    /// Clones the session configuration and database. The clone keeps the
    /// engine id — prepared queries remain executable on it — but starts
    /// with an **empty** answer cache (cached answers are cheap to
    /// re-derive and a `Mutex`-held map is not meaningfully shareable by
    /// value).
    fn clone(&self) -> Engine {
        Engine {
            id: self.id,
            db: self.db.clone(),
            semantics: self.semantics,
            config: self.config,
            approx: self.approx.clone(),
            ph1: self.ph1.clone(),
            kernel_count: self.kernel_count.clone(),
            cache: AnswerCache::new(self.cache.is_enabled()),
        }
    }
}

impl Engine {
    /// Starts configuring an engine over `db`.
    pub fn builder(db: CwDatabase) -> EngineBuilder {
        EngineBuilder::new(db)
    }

    /// An engine with all defaults ([`Semantics::Auto`], naive backend).
    pub fn new(db: CwDatabase) -> Engine {
        EngineBuilder::new(db).build()
    }

    /// The underlying closed-world database.
    pub fn db(&self) -> &CwDatabase {
        &self.db
    }

    /// The session's current default semantics.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// Changes the session's default semantics (prepared queries stay
    /// valid — their artifacts are semantics-independent).
    pub fn set_semantics(&mut self, semantics: Semantics) {
        self.semantics = semantics;
    }

    /// The configured enumeration worker-thread count (`0` = one per CPU;
    /// see [`EngineBuilder::parallelism`]).
    pub fn parallelism(&self) -> usize {
        self.config.parallel.threads
    }

    /// Changes the enumeration worker-thread count (prepared queries stay
    /// valid — the thread count never changes an answer, only how fast the
    /// Theorem 1 and possible-answer enumerations run).
    pub fn set_parallelism(&mut self, threads: usize) {
        self.config.parallel = ParallelConfig::new(threads);
    }

    /// The §5 approximation machinery, built lazily on first use (it
    /// materializes `Ph₂(LB)`, the `α_P` relations, and the configured
    /// `NE` store — all polynomial).
    pub fn approx_engine(&self) -> &ApproxEngine {
        self.approx.get_or_init(|| match self.config.ne_store {
            NeStoreMode::Explicit => ApproxEngine::new(&self.db),
            NeStoreMode::Virtual => ApproxEngine::with_virtual_ne(&self.db),
        })
    }

    fn ph1_db(&self) -> &PhysicalDb {
        self.ph1.get_or_init(|| ph1(&self.db))
    }

    /// Parses and [`prepare`](Engine::prepare)s a query in the surface
    /// syntax.
    pub fn prepare_text(&self, text: &str) -> Result<PreparedQuery, EngineError> {
        self.prepare(parse_query(self.db.voc(), text)?)
    }

    /// Prepares a query: validates it against the vocabulary, classifies
    /// it, determines the completeness certificate, rewrites it to the §5
    /// `Q̂`, and — when the configured backend is [`Backend::Algebra`] —
    /// compiles `Q̂` to an optimized algebra plan (first-order `Q̂` only;
    /// the naive backend evaluates `Q̂` directly, so compiling for it
    /// would be wasted work). The result can be executed any number of
    /// times under any semantics.
    ///
    /// Preparation forces the one-time lazy build of the §5 machinery
    /// ([`Engine::approx_engine`]); the per-query artifacts themselves
    /// (NNF + rewrite, and the plan where applicable) are polynomial in
    /// the query and schema.
    pub fn prepare(&self, query: Query) -> Result<PreparedQuery, EngineError> {
        query.check(self.db.voc())?;
        let class = query.class();
        let completeness = exactness_theorem(&self.db, &query);
        let approx = self.approx_engine();
        let rewritten = approx.rewrite(&query, self.config.alpha)?;
        let plan = match self.config.backend {
            Backend::Naive => None,
            Backend::Algebra(_) => self.compile_plan(&rewritten)?,
        };
        let fingerprint = {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            query.hash(&mut hasher);
            hasher.finish()
        };
        Ok(PreparedQuery {
            engine_id: self.id,
            query,
            class,
            completeness,
            rewritten,
            plan,
            fingerprint,
        })
    }

    /// Whether the answer cache is currently enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_enabled()
    }

    /// Turns the answer cache on or off. Disabling stops both lookups and
    /// inserts but keeps existing entries (the database is immutable, so
    /// they stay valid and re-enabling reuses them); use
    /// [`Engine::invalidate_cache`] to drop them.
    pub fn set_cache_enabled(&self, enabled: bool) {
        self.cache.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Number of answers currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops every cached answer. This is the invalidation contract for
    /// database mutation: any future hook that changes the engine's
    /// database (incremental fact/axiom deltas, per the roadmap) MUST call
    /// this before serving another query — cached answers certify
    /// statements about the database as it was when they were computed.
    pub fn invalidate_cache(&self) {
        self.cache.clear();
    }

    /// Compiles `Q̂` to an optimized algebra plan over the extended
    /// database, or `None` if `Q̂` is second-order.
    fn compile_plan(&self, rewritten: &Query) -> Result<Option<qld_algebra::Plan>, EngineError> {
        if !rewritten.is_first_order() {
            return Ok(None);
        }
        let approx = self.approx_engine();
        let plan = compile_query_ordered(approx.extended_voc(), approx.extended_db(), rewritten)?;
        Ok(Some(optimize(approx.extended_voc(), plan)))
    }

    /// The optimized algebra plan for a prepared query's `Q̂`: the one
    /// cached at prepare time under [`Backend::Algebra`], or compiled on
    /// demand otherwise (e.g. for the CLI's `:explain` on a naive-backend
    /// session). `None` when `Q̂` is second-order.
    pub fn plan_for(
        &self,
        prepared: &PreparedQuery,
    ) -> Result<Option<qld_algebra::Plan>, EngineError> {
        if prepared.engine_id != self.id {
            return Err(EngineError::PreparedElsewhere);
        }
        match prepared.plan() {
            Some(plan) => Ok(Some(plan.clone())),
            None => self.compile_plan(prepared.rewritten()),
        }
    }

    /// Executes a prepared query under the session's default semantics.
    pub fn execute(&self, prepared: &PreparedQuery) -> Result<Answers, EngineError> {
        self.execute_as(prepared, self.semantics)
    }

    /// Executes a prepared query under an explicit semantics, regardless
    /// of the session default. When the answer cache holds this
    /// `(query, semantics)` pair the stored answer is returned immediately
    /// with [`Evidence::cache_hit`] set and zero new mappings; otherwise
    /// the regime runs and the result is cached for next time.
    pub fn execute_as(
        &self,
        prepared: &PreparedQuery,
        semantics: Semantics,
    ) -> Result<Answers, EngineError> {
        if prepared.engine_id != self.id {
            return Err(EngineError::PreparedElsewhere);
        }
        if let Some(hit) = self.cache.lookup(prepared, semantics) {
            return Ok(hit);
        }
        let start = Instant::now();
        let outcome = match semantics {
            Semantics::Exact => self.run_exact(prepared)?,
            Semantics::Approx => self.run_approx(prepared)?,
            Semantics::Possible => self.run_possible(prepared)?,
            Semantics::Auto => self.run_auto(prepared)?,
        };
        let answers = package(outcome, semantics, None, start);
        self.cache.insert(prepared, semantics, &answers);
        Ok(answers)
    }

    /// Executes a whole batch of prepared queries under the session's
    /// default semantics, amortizing the mapping enumeration: every query
    /// the configured semantics would send through the Theorem 1
    /// enumeration (or its possible-answer dual) shares **one** pass over
    /// the respecting mappings, instead of re-walking the search tree per
    /// query. See [`Engine::execute_batch_as`].
    pub fn execute_batch(&self, prepared: &[PreparedQuery]) -> Result<Vec<Answers>, EngineError> {
        self.execute_batch_as(prepared, self.semantics)
    }

    /// [`Engine::execute_batch`] under an explicit semantics.
    ///
    /// The batch is partitioned by evaluation route:
    ///
    /// * answers already in the cache are served from it (`cache_hit`);
    /// * queries bound for a certified polynomial path (Corollary 2, the
    ///   §5 approximation, the over-budget bounded pair) run individually
    ///   — they are cheap and share nothing;
    /// * every remaining query joins a shared enumeration group: one call
    ///   into the batched Theorem 1 evaluator (or its possible-answer
    ///   dual), with structurally identical queries deduplicated. Each
    ///   group member's [`Evidence`] reports the group's shared
    ///   `mappings_evaluated` total and [`Evidence::shared_batch`].
    ///
    /// Answers are bit-identical to executing each query separately; the
    /// `i`-th answer corresponds to `prepared[i]`. Timing attribution:
    /// individually-routed members and cache hits time themselves, while
    /// every member of a shared enumeration group reports the *group's*
    /// wall-clock as its `elapsed` — the enumeration ran once for all of
    /// them, so per-member elapsed values must not be summed.
    pub fn execute_batch_as(
        &self,
        prepared: &[PreparedQuery],
        semantics: Semantics,
    ) -> Result<Vec<Answers>, EngineError> {
        for p in prepared {
            if p.engine_id != self.id {
                return Err(EngineError::PreparedElsewhere);
            }
        }
        let mut results: Vec<Option<Answers>> = vec![None; prepared.len()];
        let mut certain_group: Vec<usize> = Vec::new();
        let mut possible_group: Vec<usize> = Vec::new();
        for (i, p) in prepared.iter().enumerate() {
            if let Some(hit) = self.cache.lookup(p, semantics) {
                results[i] = Some(hit);
            } else {
                match self.enumeration_route(p, semantics) {
                    Some(EnumerationKind::Certain) => certain_group.push(i),
                    Some(EnumerationKind::Possible) => possible_group.push(i),
                    None => results[i] = Some(self.execute_as(p, semantics)?),
                }
            }
        }
        self.run_shared_group(
            prepared,
            &certain_group,
            EnumerationKind::Certain,
            semantics,
            &mut results,
        )?;
        self.run_shared_group(
            prepared,
            &possible_group,
            EnumerationKind::Possible,
            semantics,
            &mut results,
        )?;
        Ok(results
            .into_iter()
            .map(|a| a.expect("every batch slot answered"))
            .collect())
    }

    /// Would this `(query, semantics)` pair run a full mapping enumeration
    /// (and which one)? These are exactly the executions worth batching.
    ///
    /// This is the **single** classification both the individual `run_*`
    /// paths and the batch partitioner dispatch on — `run_exact` and
    /// `run_auto` consult it rather than re-testing the fast-path /
    /// completeness / budget conditions, so the batched and per-query
    /// routes cannot drift apart.
    fn enumeration_route(
        &self,
        prepared: &PreparedQuery,
        semantics: Semantics,
    ) -> Option<EnumerationKind> {
        match semantics {
            Semantics::Exact
                if !(self.config.corollary2_fast_path && self.db.is_fully_specified()) =>
            {
                Some(EnumerationKind::Certain)
            }
            Semantics::Auto if prepared.completeness.is_none() && !self.over_mapping_budget() => {
                Some(EnumerationKind::Certain)
            }
            Semantics::Possible => Some(EnumerationKind::Possible),
            _ => None,
        }
    }

    /// Runs one shared enumeration group of a batch: deduplicates
    /// structurally identical queries (by full structural equality, so a
    /// fingerprint collision cannot merge distinct queries), makes a
    /// single call into the batched evaluator, and distributes answers
    /// (and the shared stats and wall-clock) to every member slot.
    fn run_shared_group(
        &self,
        prepared: &[PreparedQuery],
        group: &[usize],
        kind: EnumerationKind,
        semantics: Semantics,
        results: &mut [Option<Answers>],
    ) -> Result<(), EngineError> {
        if group.is_empty() {
            return Ok(());
        }
        let start = Instant::now();
        let mut slot_of: HashMap<&Query, usize> = HashMap::new();
        let mut queries: Vec<Query> = Vec::new();
        let mut slots: Vec<usize> = Vec::with_capacity(group.len());
        for &i in group {
            let slot = *slot_of.entry(&prepared[i].query).or_insert_with(|| {
                queries.push(prepared[i].query.clone());
                queries.len() - 1
            });
            slots.push(slot);
        }
        let opts = self.exact_options();
        let ((rels, stats), regime, certificate) = match kind {
            EnumerationKind::Certain => (
                certain_answers_batch_with(&self.db, &queries, opts)?,
                Regime::Theorem1,
                Certificate::ExactTheorem1,
            ),
            EnumerationKind::Possible => (
                possible_answers_batch_with(&self.db, &queries, opts)?,
                Regime::PossibleWorlds,
                Certificate::PossibleUpperBound,
            ),
        };
        let shared = (queries.len() > 1).then_some(queries.len());
        for (&i, &slot) in group.iter().zip(slots.iter()) {
            let outcome = RunOutcome {
                tuples: rels[slot].clone(),
                regime,
                certificate,
                stats,
                upper: None,
            };
            let answers = package(outcome, semantics, shared, start);
            self.cache.insert(&prepared[i], semantics, &answers);
            results[i] = Some(answers);
        }
        Ok(())
    }

    /// One-shot convenience: parse, prepare, and execute under the
    /// session's default semantics.
    pub fn query(&self, text: &str) -> Result<Answers, EngineError> {
        let prepared = self.prepare_text(text)?;
        self.execute(&prepared)
    }

    /// One-shot convenience for an already-built [`Query`].
    pub fn eval(&self, query: &Query) -> Result<Answers, EngineError> {
        let prepared = self.prepare(query.clone())?;
        self.execute(&prepared)
    }

    /// Renders answer tuples with the vocabulary's constant names.
    pub fn answer_names(&self, answers: &Answers) -> Vec<Vec<String>> {
        qld_core::answer_names(self.db.voc(), answers.tuples())
    }

    /// The exact-enumeration options induced by the engine configuration.
    fn exact_options(&self) -> ExactOptions {
        ExactOptions {
            strategy: self.config.strategy,
            corollary2_fast_path: false,
            parallel: self.config.parallel,
            ..ExactOptions::new()
        }
    }

    /// The full Theorem 1 enumeration — shared by `Exact` semantics and
    /// `Auto` escalation so the two can never diverge.
    fn run_theorem1(&self, prepared: &PreparedQuery) -> Result<RunOutcome, EngineError> {
        let (rel, stats) = certain_answers_with(&self.db, prepared.query(), self.exact_options())?;
        Ok(RunOutcome {
            tuples: rel,
            regime: Regime::Theorem1,
            certificate: Certificate::ExactTheorem1,
            stats,
            upper: None,
        })
    }

    fn run_exact(&self, prepared: &PreparedQuery) -> Result<RunOutcome, EngineError> {
        if self.enumeration_route(prepared, Semantics::Exact).is_some() {
            return self.run_theorem1(prepared);
        }
        Ok(RunOutcome::polynomial(
            eval_query(self.ph1_db(), prepared.query()),
            Regime::Corollary2,
            Certificate::ExactCorollary2,
        ))
    }

    fn run_possible(&self, prepared: &PreparedQuery) -> Result<RunOutcome, EngineError> {
        let (rel, stats) = possible_answers_with(&self.db, prepared.query(), self.exact_options())?;
        Ok(RunOutcome {
            tuples: rel,
            regime: Regime::PossibleWorlds,
            certificate: Certificate::PossibleUpperBound,
            stats,
            upper: None,
        })
    }

    fn run_approx(&self, prepared: &PreparedQuery) -> Result<RunOutcome, EngineError> {
        let rel = self.eval_rewritten(prepared)?;
        let certificate = match prepared.completeness {
            Some(theorem) => Certificate::ExactCompleteness(theorem),
            None => Certificate::SoundLowerBound,
        };
        Ok(RunOutcome::polynomial(
            rel,
            Regime::Approximation,
            certificate,
        ))
    }

    fn run_auto(&self, prepared: &PreparedQuery) -> Result<RunOutcome, EngineError> {
        // No completeness theorem and within budget: escalate to Theorem 1
        // (the route predicate is shared with the batch partitioner).
        if self.enumeration_route(prepared, Semantics::Auto).is_some() {
            return self.run_theorem1(prepared);
        }
        match prepared.completeness {
            // Fully specified: one physical evaluation is exact, and is
            // the cheapest certified path (works for second-order queries
            // too, unlike the algebra backend).
            Some(CompletenessTheorem::FullySpecified) => Ok(RunOutcome::polynomial(
                eval_query(self.ph1_db(), prepared.query()),
                Regime::Corollary2,
                Certificate::ExactCorollary2,
            )),
            // Positive first-order: the §5 approximation is exact by
            // Theorems 11 + 13.
            Some(theorem @ CompletenessTheorem::PositiveQuery) => {
                let rel = self.eval_rewritten(prepared)?;
                Ok(RunOutcome::polynomial(
                    rel,
                    Regime::Approximation,
                    Certificate::ExactCompleteness(theorem),
                ))
            }
            // No completeness theorem applies and the cost model says the
            // enumeration is hopeless: certified bracket instead.
            None => self.run_bounded_pair(prepared),
        }
    }

    /// Is the configured mapping budget exceeded? Probes the kernel count
    /// once per engine, aborting the count at `budget + 1` so the probe
    /// itself stays within budget.
    fn over_mapping_budget(&self) -> bool {
        match self.config.mapping_budget {
            None => false,
            Some(budget) => {
                let count = self.kernel_count.get_or_init(|| {
                    count_kernel_mappings_up_to(&self.db, budget.saturating_add(1))
                });
                *count > budget
            }
        }
    }

    /// The over-budget refusal: instead of a hopeless Theorem 1 run,
    /// bracket `Q(LB)` with two polynomial evaluations — the §5
    /// approximation of `Q` below (sound by Theorem 11) and the complement
    /// of the §5 approximation of `¬Q` above (`t` certainly *not* an
    /// answer means `t` is an answer in no model, so approx(¬Q) ⊆
    /// certain(¬Q) excludes only non-answers). Both run on the naive
    /// evaluator regardless of backend: this path must also serve the
    /// second-order rewrites the algebra backend refuses.
    fn run_bounded_pair(&self, prepared: &PreparedQuery) -> Result<RunOutcome, EngineError> {
        let approx = self.approx_engine();
        let lower = eval_query(approx.extended_db(), prepared.rewritten());
        let (head, body) = prepared.query.clone().into_parts();
        let negated = Query::new(head, Formula::not(body))?;
        let neg_rewritten = approx.rewrite(&negated, self.config.alpha)?;
        let certainly_not = eval_query(approx.extended_db(), &neg_rewritten);
        let arity = prepared.query.arity();
        let consts: Vec<Elem> = (0..self.db.num_consts() as Elem).collect();
        let upper = Relation::collect(
            arity,
            TupleSpace::new(&consts, arity).filter(|t| !certainly_not.contains(t)),
        );
        Ok(RunOutcome {
            tuples: lower,
            regime: Regime::Approximation,
            certificate: Certificate::BoundedPair,
            stats: EvalStats::default(),
            upper: Some(upper),
        })
    }

    /// Evaluates the prepared `Q̂` over `Ph₂(LB)` on the configured
    /// backend.
    fn eval_rewritten(&self, prepared: &PreparedQuery) -> Result<Relation, EngineError> {
        let approx = self.approx_engine();
        match self.config.backend {
            Backend::Naive => Ok(eval_query(approx.extended_db(), prepared.rewritten())),
            Backend::Algebra(opts) => match prepared.plan() {
                Some(plan) => Ok(execute(approx.extended_db(), plan, opts)),
                None => Err(EngineError::Compile(qld_algebra::CompileError::SecondOrder)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_logic::Vocabulary;

    fn tiny_engine() -> Engine {
        let mut voc = Vocabulary::new();
        voc.add_consts(["a", "b"]).unwrap();
        voc.add_pred("P", 1).unwrap();
        let db = CwDatabase::builder(voc).build().unwrap();
        Engine::new(db)
    }

    #[test]
    fn answer_cache_evicts_at_capacity() {
        let engine = tiny_engine();
        let queries = ["P(a)", "P(b)", "!P(a)", "!P(b)", "P(a) | P(b)"];
        let prepared: Vec<_> = queries
            .iter()
            .map(|t| engine.prepare_text(t).unwrap())
            .collect();
        let answers = engine.execute(&prepared[0]).unwrap();
        engine.invalidate_cache();
        // Hammer a 2-entry cache with 5 distinct keys: it stays bounded
        // and keeps serving correct hits for whatever it retains.
        for p in &prepared {
            engine
                .cache
                .insert_with_capacity(p, Semantics::Auto, &answers, 2);
            assert!(engine.cache.len() <= 2);
        }
        assert_eq!(engine.cache.len(), 2);
        // Re-inserting a retained key does not evict (no growth, no churn
        // needed).
        let retained: Vec<_> = prepared
            .iter()
            .filter(|p| engine.cache.lookup(p, Semantics::Auto).is_some())
            .collect();
        assert_eq!(retained.len(), 2);
        engine
            .cache
            .insert_with_capacity(retained[0], Semantics::Auto, &answers, 2);
        assert_eq!(engine.cache.len(), 2);
        assert!(engine.cache.lookup(retained[1], Semantics::Auto).is_some());
    }

    #[test]
    fn cache_lookup_rejects_fingerprint_collisions() {
        let engine = tiny_engine();
        let p1 = engine.prepare_text("P(a)").unwrap();
        let p2 = engine.prepare_text("P(b)").unwrap();
        let answers = engine.execute(&p1).unwrap();
        engine.invalidate_cache();
        engine.cache.insert(&p1, Semantics::Auto, &answers);
        // Simulate a 64-bit fingerprint collision: a *different* query
        // carrying p1's fingerprint must miss, not be served p1's answer.
        let forged = PreparedQuery {
            fingerprint: p1.fingerprint,
            ..p2.clone()
        };
        assert!(engine.cache.lookup(&forged, Semantics::Auto).is_none());
        assert!(engine.cache.lookup(&p1, Semantics::Auto).is_some());
    }
}
