//! The [`Engine`] session type and its builder.

use crate::error::EngineError;
use crate::evidence::{Answers, Certificate, Evidence, Regime, Semantics};
use crate::prepared::PreparedQuery;
use qld_algebra::{compile_query_ordered, execute, optimize};
use qld_approx::{exactness_theorem, AlphaMode, ApproxEngine, Backend, CompletenessTheorem};
use qld_core::exact::{
    certain_answers_with, possible_answers_with, EvalStats, ExactOptions, MappingStrategy,
};
use qld_core::mappings::ParallelConfig;
use qld_core::ph::ph1;
use qld_core::CwDatabase;
use qld_logic::parser::parse_query;
use qld_logic::Query;
use qld_physical::{eval_query, PhysicalDb, Relation};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(0);

/// How the engine stores the `NE` inequality relation for the §5 path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NeStoreMode {
    /// Materialize `NE` as an explicit `O(|C|²)` relation (the default).
    #[default]
    Explicit,
    /// The virtual representation §5 closes with: keep only `NE′` and the
    /// unknown-marker `U`, and expand `NE(x,y)` atoms into
    /// `NE′(x,y) ∨ (¬U(x) ∧ ¬U(y) ∧ ¬(x = y))` at rewrite time.
    Virtual,
}

/// Immutable evaluation configuration, set by [`EngineBuilder`].
#[derive(Debug, Clone, Copy, Default)]
struct EngineConfig {
    backend: Backend,
    alpha: AlphaMode,
    ne_store: NeStoreMode,
    strategy: MappingStrategy,
    corollary2_fast_path: bool,
    parallel: ParallelConfig,
}

/// Configures and constructs an [`Engine`]. Obtained from
/// [`Engine::builder`]; every knob has a sensible default
/// ([`Semantics::Auto`], naive backend, materialized `α_P`, explicit `NE`,
/// kernel mapping enumeration, Corollary 2 fast path on).
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    db: CwDatabase,
    semantics: Semantics,
    config: EngineConfig,
}

impl EngineBuilder {
    fn new(db: CwDatabase) -> EngineBuilder {
        EngineBuilder {
            db,
            semantics: Semantics::default(),
            config: EngineConfig {
                corollary2_fast_path: true,
                ..EngineConfig::default()
            },
        }
    }

    /// The session's default answer semantics (overridable per call with
    /// [`Engine::execute_as`]).
    pub fn semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Which machinery evaluates the §5 rewrite `Q̂`: the naive Tarskian
    /// evaluator or the relational-algebra engine.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// How `¬P(x̄)` is realized in `Q̂`: a scan of the materialized `α_P`
    /// relation, or the literal Lemma 10 formula.
    pub fn alpha_mode(mut self, alpha: AlphaMode) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Explicit or virtual `NE` storage for the §5 path.
    pub fn ne_store(mut self, mode: NeStoreMode) -> Self {
        self.config.ne_store = mode;
        self
    }

    /// Mapping enumeration strategy for the Theorem 1 (and possible-world)
    /// paths: kernel-canonical (default) or raw respecting mappings.
    pub fn mapping_strategy(mut self, strategy: MappingStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Worker threads for the Theorem 1 / possible-answer mapping
    /// enumeration: `1` is sequential, `0` means one worker per available
    /// CPU. Defaults to the `QLD_THREADS` environment variable (else
    /// sequential). Answers are bit-identical at any thread count;
    /// [`Evidence`](crate::Evidence) reports `workers_used` and the
    /// mapping total summed across workers.
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.config.parallel = ParallelConfig::new(threads);
        self
    }

    /// Enables/disables the Corollary 2 fast path under
    /// [`Semantics::Exact`] (on by default; [`Semantics::Auto`] always
    /// uses it on fully specified databases — that is its certificate).
    pub fn corollary2_fast_path(mut self, enabled: bool) -> Self {
        self.config.corollary2_fast_path = enabled;
        self
    }

    /// Finalizes the engine.
    pub fn build(self) -> Engine {
        Engine {
            id: NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed),
            db: self.db,
            semantics: self.semantics,
            config: self.config,
            approx: OnceLock::new(),
            ph1: OnceLock::new(),
        }
    }
}

/// A query-evaluation session over one closed-world logical database.
///
/// `Engine` is the single front door to every evaluation regime the paper
/// describes. Queries are [`prepare`](Engine::prepare)d once (parse,
/// validate, classify, rewrite to `Q̂`, compile to algebra) and executed
/// many times under any [`Semantics`]; every answer carries an
/// [`Evidence`] report with an exactness [`Certificate`].
///
/// # Which theorem justifies which certificate
///
/// | Certificate | Paper result | When issued |
/// |---|---|---|
/// | [`Certificate::ExactTheorem1`] | Theorem 1 | the full mapping enumeration ran (`Exact` semantics off the fast path, or `Auto` escalation) |
/// | [`Certificate::ExactCorollary2`] | Corollary 2 | the database is fully specified and one evaluation over `Ph₁(LB)` answered the query |
/// | [`Certificate::ExactCompleteness`]`(`[`CompletenessTheorem::FullySpecified`]`)` | Theorems 11 + 12 | the §5 approximation ran on a fully specified database |
/// | [`Certificate::ExactCompleteness`]`(`[`CompletenessTheorem::PositiveQuery`]`)` | Theorems 11 + 13 | the §5 approximation ran on a positive first-order query |
/// | [`Certificate::SoundLowerBound`] | Theorem 11 | the §5 approximation ran and no completeness theorem applies |
/// | [`Certificate::PossibleUpperBound`] | dual of Theorem 1 | possible-answer semantics ran |
///
/// Under [`Semantics::Auto`] the engine never returns an uncertified
/// answer: it picks Corollary 2 on fully specified databases, the §5
/// approximation (exact by Theorem 13) on positive first-order queries,
/// and escalates to the Theorem 1 enumeration only when neither
/// completeness theorem applies.
///
/// # Example
///
/// ```
/// use qld_engine::{Engine, Semantics};
/// use qld_core::CwDatabase;
/// use qld_logic::Vocabulary;
///
/// let mut voc = Vocabulary::new();
/// let ids = voc.add_consts(["socrates", "plato", "mystery"]).unwrap();
/// let teaches = voc.add_pred("TEACHES", 2).unwrap();
/// let db = CwDatabase::builder(voc)
///     .fact(teaches, &[ids[0], ids[1]])
///     .unique(ids[0], ids[1])
///     .build()
///     .unwrap();
///
/// let engine = Engine::builder(db).semantics(Semantics::Auto).build();
/// let prepared = engine.prepare_text("(x) . TEACHES(socrates, x)").unwrap();
/// let answers = engine.execute(&prepared).unwrap();
/// assert!(answers.is_exact()); // positive query → Theorem 13 certificate
/// assert_eq!(engine.answer_names(&answers), vec![vec!["plato"]]);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    id: u64,
    db: CwDatabase,
    semantics: Semantics,
    config: EngineConfig,
    /// §5 machinery (`Ph₂(LB)`, `α_P`, `NE`), built on first use.
    approx: OnceLock<ApproxEngine>,
    /// `Ph₁(LB)`, cached for the Corollary 2 fast path.
    ph1: OnceLock<PhysicalDb>,
}

impl Engine {
    /// Starts configuring an engine over `db`.
    pub fn builder(db: CwDatabase) -> EngineBuilder {
        EngineBuilder::new(db)
    }

    /// An engine with all defaults ([`Semantics::Auto`], naive backend).
    pub fn new(db: CwDatabase) -> Engine {
        EngineBuilder::new(db).build()
    }

    /// The underlying closed-world database.
    pub fn db(&self) -> &CwDatabase {
        &self.db
    }

    /// The session's current default semantics.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// Changes the session's default semantics (prepared queries stay
    /// valid — their artifacts are semantics-independent).
    pub fn set_semantics(&mut self, semantics: Semantics) {
        self.semantics = semantics;
    }

    /// The configured enumeration worker-thread count (`0` = one per CPU;
    /// see [`EngineBuilder::parallelism`]).
    pub fn parallelism(&self) -> usize {
        self.config.parallel.threads
    }

    /// Changes the enumeration worker-thread count (prepared queries stay
    /// valid — the thread count never changes an answer, only how fast the
    /// Theorem 1 and possible-answer enumerations run).
    pub fn set_parallelism(&mut self, threads: usize) {
        self.config.parallel = ParallelConfig::new(threads);
    }

    /// The §5 approximation machinery, built lazily on first use (it
    /// materializes `Ph₂(LB)`, the `α_P` relations, and the configured
    /// `NE` store — all polynomial).
    pub fn approx_engine(&self) -> &ApproxEngine {
        self.approx.get_or_init(|| match self.config.ne_store {
            NeStoreMode::Explicit => ApproxEngine::new(&self.db),
            NeStoreMode::Virtual => ApproxEngine::with_virtual_ne(&self.db),
        })
    }

    fn ph1_db(&self) -> &PhysicalDb {
        self.ph1.get_or_init(|| ph1(&self.db))
    }

    /// Parses and [`prepare`](Engine::prepare)s a query in the surface
    /// syntax.
    pub fn prepare_text(&self, text: &str) -> Result<PreparedQuery, EngineError> {
        self.prepare(parse_query(self.db.voc(), text)?)
    }

    /// Prepares a query: validates it against the vocabulary, classifies
    /// it, determines the completeness certificate, rewrites it to the §5
    /// `Q̂`, and — when the configured backend is [`Backend::Algebra`] —
    /// compiles `Q̂` to an optimized algebra plan (first-order `Q̂` only;
    /// the naive backend evaluates `Q̂` directly, so compiling for it
    /// would be wasted work). The result can be executed any number of
    /// times under any semantics.
    ///
    /// Preparation forces the one-time lazy build of the §5 machinery
    /// ([`Engine::approx_engine`]); the per-query artifacts themselves
    /// (NNF + rewrite, and the plan where applicable) are polynomial in
    /// the query and schema.
    pub fn prepare(&self, query: Query) -> Result<PreparedQuery, EngineError> {
        query.check(self.db.voc())?;
        let class = query.class();
        let completeness = exactness_theorem(&self.db, &query);
        let approx = self.approx_engine();
        let rewritten = approx.rewrite(&query, self.config.alpha)?;
        let plan = match self.config.backend {
            Backend::Naive => None,
            Backend::Algebra(_) => self.compile_plan(&rewritten)?,
        };
        Ok(PreparedQuery {
            engine_id: self.id,
            query,
            class,
            completeness,
            rewritten,
            plan,
        })
    }

    /// Compiles `Q̂` to an optimized algebra plan over the extended
    /// database, or `None` if `Q̂` is second-order.
    fn compile_plan(&self, rewritten: &Query) -> Result<Option<qld_algebra::Plan>, EngineError> {
        if !rewritten.is_first_order() {
            return Ok(None);
        }
        let approx = self.approx_engine();
        let plan = compile_query_ordered(approx.extended_voc(), approx.extended_db(), rewritten)?;
        Ok(Some(optimize(approx.extended_voc(), plan)))
    }

    /// The optimized algebra plan for a prepared query's `Q̂`: the one
    /// cached at prepare time under [`Backend::Algebra`], or compiled on
    /// demand otherwise (e.g. for the CLI's `:explain` on a naive-backend
    /// session). `None` when `Q̂` is second-order.
    pub fn plan_for(
        &self,
        prepared: &PreparedQuery,
    ) -> Result<Option<qld_algebra::Plan>, EngineError> {
        if prepared.engine_id != self.id {
            return Err(EngineError::PreparedElsewhere);
        }
        match prepared.plan() {
            Some(plan) => Ok(Some(plan.clone())),
            None => self.compile_plan(prepared.rewritten()),
        }
    }

    /// Executes a prepared query under the session's default semantics.
    pub fn execute(&self, prepared: &PreparedQuery) -> Result<Answers, EngineError> {
        self.execute_as(prepared, self.semantics)
    }

    /// Executes a prepared query under an explicit semantics, regardless
    /// of the session default.
    pub fn execute_as(
        &self,
        prepared: &PreparedQuery,
        semantics: Semantics,
    ) -> Result<Answers, EngineError> {
        if prepared.engine_id != self.id {
            return Err(EngineError::PreparedElsewhere);
        }
        let start = Instant::now();
        let (tuples, regime, certificate, stats) = match semantics {
            Semantics::Exact => self.run_exact(prepared)?,
            Semantics::Approx => self.run_approx(prepared)?,
            Semantics::Possible => self.run_possible(prepared)?,
            Semantics::Auto => self.run_auto(prepared)?,
        };
        Ok(Answers::new(
            tuples,
            Evidence {
                requested: semantics,
                regime,
                certificate,
                elapsed: start.elapsed(),
                mappings_evaluated: stats.mappings_evaluated,
                workers_used: stats.workers_used,
            },
        ))
    }

    /// One-shot convenience: parse, prepare, and execute under the
    /// session's default semantics.
    pub fn query(&self, text: &str) -> Result<Answers, EngineError> {
        let prepared = self.prepare_text(text)?;
        self.execute(&prepared)
    }

    /// One-shot convenience for an already-built [`Query`].
    pub fn eval(&self, query: &Query) -> Result<Answers, EngineError> {
        let prepared = self.prepare(query.clone())?;
        self.execute(&prepared)
    }

    /// Renders answer tuples with the vocabulary's constant names.
    pub fn answer_names(&self, answers: &Answers) -> Vec<Vec<String>> {
        qld_core::answer_names(self.db.voc(), answers.tuples())
    }

    /// The exact-enumeration options induced by the engine configuration.
    fn exact_options(&self) -> ExactOptions {
        ExactOptions {
            strategy: self.config.strategy,
            corollary2_fast_path: false,
            parallel: self.config.parallel,
            ..ExactOptions::new()
        }
    }

    /// The full Theorem 1 enumeration — shared by `Exact` semantics and
    /// `Auto` escalation so the two can never diverge.
    fn run_theorem1(
        &self,
        prepared: &PreparedQuery,
    ) -> Result<(Relation, Regime, Certificate, EvalStats), EngineError> {
        let (rel, stats) = certain_answers_with(&self.db, prepared.query(), self.exact_options())?;
        Ok((rel, Regime::Theorem1, Certificate::ExactTheorem1, stats))
    }

    fn run_exact(
        &self,
        prepared: &PreparedQuery,
    ) -> Result<(Relation, Regime, Certificate, EvalStats), EngineError> {
        if self.config.corollary2_fast_path && self.db.is_fully_specified() {
            let rel = eval_query(self.ph1_db(), prepared.query());
            return Ok((
                rel,
                Regime::Corollary2,
                Certificate::ExactCorollary2,
                EvalStats::default(),
            ));
        }
        self.run_theorem1(prepared)
    }

    fn run_possible(
        &self,
        prepared: &PreparedQuery,
    ) -> Result<(Relation, Regime, Certificate, EvalStats), EngineError> {
        let (rel, stats) = possible_answers_with(&self.db, prepared.query(), self.exact_options())?;
        Ok((
            rel,
            Regime::PossibleWorlds,
            Certificate::PossibleUpperBound,
            stats,
        ))
    }

    fn run_approx(
        &self,
        prepared: &PreparedQuery,
    ) -> Result<(Relation, Regime, Certificate, EvalStats), EngineError> {
        let rel = self.eval_rewritten(prepared)?;
        let certificate = match prepared.completeness {
            Some(theorem) => Certificate::ExactCompleteness(theorem),
            None => Certificate::SoundLowerBound,
        };
        Ok((
            rel,
            Regime::Approximation,
            certificate,
            EvalStats::default(),
        ))
    }

    fn run_auto(
        &self,
        prepared: &PreparedQuery,
    ) -> Result<(Relation, Regime, Certificate, EvalStats), EngineError> {
        match prepared.completeness {
            // Fully specified: one physical evaluation is exact, and is
            // the cheapest certified path (works for second-order queries
            // too, unlike the algebra backend).
            Some(CompletenessTheorem::FullySpecified) => {
                let rel = eval_query(self.ph1_db(), prepared.query());
                Ok((
                    rel,
                    Regime::Corollary2,
                    Certificate::ExactCorollary2,
                    EvalStats::default(),
                ))
            }
            // Positive first-order: the §5 approximation is exact by
            // Theorems 11 + 13.
            Some(theorem @ CompletenessTheorem::PositiveQuery) => {
                let rel = self.eval_rewritten(prepared)?;
                Ok((
                    rel,
                    Regime::Approximation,
                    Certificate::ExactCompleteness(theorem),
                    EvalStats::default(),
                ))
            }
            // No completeness theorem applies: escalate to Theorem 1.
            None => self.run_theorem1(prepared),
        }
    }

    /// Evaluates the prepared `Q̂` over `Ph₂(LB)` on the configured
    /// backend.
    fn eval_rewritten(&self, prepared: &PreparedQuery) -> Result<Relation, EngineError> {
        let approx = self.approx_engine();
        match self.config.backend {
            Backend::Naive => Ok(eval_query(approx.extended_db(), prepared.rewritten())),
            Backend::Algebra(opts) => match prepared.plan() {
                Some(plan) => Ok(execute(approx.extended_db(), plan, opts)),
                None => Err(EngineError::Compile(qld_algebra::CompileError::SecondOrder)),
            },
        }
    }
}
