//! The [`Engine`] session type and its builder.

use crate::delta::{Delta, DeltaReport, DeltaStats, QueryFootprint};
use crate::error::EngineError;
use crate::evidence::{Answers, Certificate, Evidence, Regime, Semantics};
use crate::prepared::PreparedQuery;
use qld_algebra::{compile_query_ordered, execute, optimize};
use qld_approx::{exactness_theorem, AlphaMode, ApproxEngine, Backend, CompletenessTheorem};
use qld_core::exact::{
    certain_answers_batch_with_decomp, certain_answers_with_decomp,
    possible_answers_batch_with_decomp, possible_answers_with_decomp, EvalStats, ExactOptions,
    MappingStrategy,
};
use qld_core::mappings::{
    analyze_decomposition, count_kernel_mappings_up_to, DbDecomposition, ParallelConfig,
};
use qld_core::ph::ph1;
use qld_core::CwDatabase;
use qld_logic::parser::parse_query;
use qld_logic::{Formula, PredId, Query};
use qld_physical::{eval_query, Elem, PhysicalDb, Relation, TupleSpace};
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(0);

/// Default cap on cached answers per engine (overridable with
/// [`EngineBuilder::cache_capacity`]). At the default the cache stays
/// useful for any realistic prepared-query working set while a
/// many-distinct-query adversary cannot grow it without bound.
const DEFAULT_ANSWER_CACHE_CAPACITY: usize = 4096;

/// One cached answer: the source [`Query`] (compared on lookup — a
/// fingerprint collision between structurally different queries is a
/// cache *miss*, never a wrong answer), its predicate footprint (the
/// selective-invalidation key deltas evict on), the finished [`Answers`],
/// and an LRU recency stamp.
#[derive(Debug, Clone)]
struct CacheEntry {
    query: Query,
    footprint: QueryFootprint,
    answers: Answers,
    tick: u64,
}

/// The map plus the LRU order index, updated together under one lock.
#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<(u64, Semantics), CacheEntry>,
    /// `tick → key`; one entry per cached answer, first = least recently
    /// used. Ticks are unique (monotonic counter), so this is a total
    /// recency order.
    lru: BTreeMap<u64, (u64, Semantics)>,
    next_tick: u64,
}

impl CacheInner {
    /// Moves `key` to the most-recently-used position.
    fn touch(&mut self, key: (u64, Semantics)) {
        let tick = self.next_tick;
        self.next_tick += 1;
        let entry = self.map.get_mut(&key).expect("touched key present");
        self.lru.remove(&entry.tick);
        entry.tick = tick;
        self.lru.insert(tick, key);
    }

    /// Removes the least-recently-used entry.
    fn evict_lru(&mut self) {
        if let Some((&tick, &key)) = self.lru.iter().next() {
            self.lru.remove(&tick);
            self.map.remove(&key);
        }
    }
}

/// The engine's interior-mutability answer cache: finished [`Answers`]
/// keyed by `(prepared-query fingerprint, semantics)`, with true LRU
/// eviction at capacity (lookups refresh recency). Every other input that
/// could change an answer — backend, alpha mode, NE store, mapping
/// strategy, Corollary 2 toggle, mapping budget — is fixed at engine
/// construction, so it needs no spot in the key; the answer-irrelevant
/// knobs (parallelism, default semantics) are deliberately excluded. The
/// *database* is engine state but mutable through [`Engine::apply`],
/// which invalidates selectively on each entry's [`QueryFootprint`];
/// [`Engine::invalidate_cache`] remains as the blanket hook.
#[derive(Debug)]
struct AnswerCache {
    enabled: AtomicBool,
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl AnswerCache {
    fn new(enabled: bool, capacity: usize) -> AnswerCache {
        AnswerCache {
            enabled: AtomicBool::new(enabled),
            capacity,
            inner: Mutex::new(CacheInner::default()),
        }
    }

    fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// A hit returns the stored answer re-stamped as cached (`cache_hit`
    /// true, zero mappings, the lookup's elapsed time) and marks the
    /// entry most recently used.
    fn lookup(&self, prepared: &PreparedQuery, semantics: Semantics) -> Option<Answers> {
        if !self.is_enabled() {
            return None;
        }
        let start = Instant::now();
        let mut inner = self.inner.lock().expect("answer cache poisoned");
        let key = (prepared.fingerprint, semantics);
        let hit = match inner.map.get(&key) {
            Some(entry) if entry.query == prepared.query => {
                Some(entry.answers.as_cache_hit(start.elapsed()))
            }
            _ => None,
        };
        if hit.is_some() {
            inner.touch(key);
        }
        hit
    }

    fn insert(&self, prepared: &PreparedQuery, semantics: Semantics, answers: &Answers) {
        if !self.is_enabled() || self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("answer cache poisoned");
        let key = (prepared.fingerprint, semantics);
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            inner.evict_lru();
        }
        let tick = inner.next_tick;
        inner.next_tick += 1;
        let entry = CacheEntry {
            query: prepared.query.clone(),
            footprint: prepared.footprint.clone(),
            answers: answers.clone(),
            tick,
        };
        if let Some(old) = inner.map.insert(key, entry) {
            inner.lru.remove(&old.tick);
        }
        inner.lru.insert(tick, key);
    }

    /// Drops every entry for which `affected` returns true; returns
    /// `(evicted, retained)` counts. This is the selective-invalidation
    /// path [`Engine::apply`] uses.
    fn evict_where(
        &self,
        mut affected: impl FnMut(&QueryFootprint, Semantics) -> bool,
    ) -> (usize, usize) {
        let mut inner = self.inner.lock().expect("answer cache poisoned");
        let victims: Vec<(u64, Semantics)> = inner
            .map
            .iter()
            .filter(|(&(_, semantics), entry)| affected(&entry.footprint, semantics))
            .map(|(&key, _)| key)
            .collect();
        for key in &victims {
            if let Some(entry) = inner.map.remove(key) {
                inner.lru.remove(&entry.tick);
            }
        }
        let retained = inner.map.len();
        (victims.len(), retained)
    }

    fn clear(&self) {
        let mut inner = self.inner.lock().expect("answer cache poisoned");
        inner.map.clear();
        inner.lru.clear();
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("answer cache poisoned").map.len()
    }
}

/// Cumulative delta bookkeeping (see [`DeltaStats`]). The re-certification
/// counter is atomic because certificates are revalidated on the `&self`
/// execution path; everything else is only written by `&mut self`
/// [`Engine::apply`].
#[derive(Debug, Default)]
struct DeltaCounters {
    deltas_applied: u64,
    facts_inserted: u64,
    ne_inserted: u64,
    cache_evicted: u64,
    recertified: AtomicU64,
}

impl Clone for DeltaCounters {
    fn clone(&self) -> DeltaCounters {
        DeltaCounters {
            deltas_applied: self.deltas_applied,
            facts_inserted: self.facts_inserted,
            ne_inserted: self.ne_inserted,
            cache_evicted: self.cache_evicted,
            recertified: AtomicU64::new(self.recertified.load(Ordering::Relaxed)),
        }
    }
}

/// What one evaluation run produced, before packaging into [`Answers`].
struct RunOutcome {
    tuples: Relation,
    regime: Regime,
    certificate: Certificate,
    stats: EvalStats,
    /// Components whose decomposition analysis came from the engine's
    /// cross-delta cache (see [`Evidence::components_reused`]).
    components_reused: u32,
    /// Certified upper bound, set only by the over-budget bounded pair.
    upper: Option<Relation>,
}

impl RunOutcome {
    /// An outcome from a polynomial regime: no mappings enumerated, no
    /// workers, no upper bound.
    fn polynomial(tuples: Relation, regime: Regime, certificate: Certificate) -> RunOutcome {
        RunOutcome {
            tuples,
            regime,
            certificate,
            stats: EvalStats::default(),
            components_reused: 0,
            upper: None,
        }
    }
}

/// Which shared enumeration a batched execution joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EnumerationKind {
    /// The Theorem 1 intersection (certain answers).
    Certain,
    /// The possible-answer union dual.
    Possible,
}

/// Packages a run's outcome as [`Answers`] with full [`Evidence`],
/// stamped with the database epoch the run computed against.
fn package(
    outcome: RunOutcome,
    semantics: Semantics,
    shared_batch: Option<usize>,
    start: Instant,
    epoch: u64,
) -> Answers {
    let answers = Answers::new(
        outcome.tuples,
        Evidence {
            requested: semantics,
            regime: outcome.regime,
            certificate: outcome.certificate,
            elapsed: start.elapsed(),
            mappings_evaluated: outcome.stats.mappings_evaluated,
            workers_used: outcome.stats.workers_used,
            components: outcome.stats.components,
            mappings_pruned: outcome.stats.mappings_pruned,
            components_reused: outcome.components_reused,
            cache_hit: false,
            shared_batch,
            epoch,
        },
    );
    match outcome.upper {
        Some(upper) => answers.with_upper_bound(upper),
        None => answers,
    }
}

/// How the engine stores the `NE` inequality relation for the §5 path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NeStoreMode {
    /// Materialize `NE` as an explicit `O(|C|²)` relation (the default).
    #[default]
    Explicit,
    /// The virtual representation §5 closes with: keep only `NE′` and the
    /// unknown-marker `U`, and expand `NE(x,y)` atoms into
    /// `NE′(x,y) ∨ (¬U(x) ∧ ¬U(y) ∧ ¬(x = y))` at rewrite time.
    Virtual,
}

/// Immutable evaluation configuration, set by [`EngineBuilder`].
#[derive(Debug, Clone, Copy, Default)]
struct EngineConfig {
    backend: Backend,
    alpha: AlphaMode,
    ne_store: NeStoreMode,
    strategy: MappingStrategy,
    corollary2_fast_path: bool,
    /// Whether enumerations use the free-null collapse (component
    /// decomposition) — answers are bit-identical either way.
    decompose: bool,
    parallel: ParallelConfig,
    /// `Some(b)`: under [`Semantics::Auto`], refuse Theorem 1 escalations
    /// whose kernel-mapping count exceeds `b` and return certified bounds
    /// instead. `None` (the default) escalates unconditionally.
    mapping_budget: Option<u64>,
    /// Whether the answer cache starts enabled.
    answer_cache: bool,
    /// Maximum cached answers (LRU eviction at capacity).
    cache_capacity: usize,
}

/// Configures and constructs an [`Engine`]. Obtained from
/// [`Engine::builder`]; every knob has a sensible default
/// ([`Semantics::Auto`], naive backend, materialized `α_P`, explicit `NE`,
/// kernel mapping enumeration, Corollary 2 fast path on).
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    db: CwDatabase,
    semantics: Semantics,
    config: EngineConfig,
}

impl EngineBuilder {
    fn new(db: CwDatabase) -> EngineBuilder {
        EngineBuilder {
            db,
            semantics: Semantics::default(),
            config: EngineConfig {
                corollary2_fast_path: true,
                decompose: true,
                answer_cache: true,
                cache_capacity: DEFAULT_ANSWER_CACHE_CAPACITY,
                ..EngineConfig::default()
            },
        }
    }

    /// The session's default answer semantics (overridable per call with
    /// [`Engine::execute_as`]).
    pub fn semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Which machinery evaluates the §5 rewrite `Q̂`: the naive Tarskian
    /// evaluator or the relational-algebra engine.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// How `¬P(x̄)` is realized in `Q̂`: a scan of the materialized `α_P`
    /// relation, or the literal Lemma 10 formula.
    pub fn alpha_mode(mut self, alpha: AlphaMode) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Explicit or virtual `NE` storage for the §5 path.
    pub fn ne_store(mut self, mode: NeStoreMode) -> Self {
        self.config.ne_store = mode;
        self
    }

    /// Mapping enumeration strategy for the Theorem 1 (and possible-world)
    /// paths: kernel-canonical (default) or raw respecting mappings.
    pub fn mapping_strategy(mut self, strategy: MappingStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Worker threads for the Theorem 1 / possible-answer mapping
    /// enumeration: `1` is sequential, `0` means one worker per available
    /// CPU. Defaults to the `QLD_THREADS` environment variable (else
    /// sequential). Answers are bit-identical at any thread count;
    /// [`Evidence`](crate::Evidence) reports `workers_used` and the
    /// mapping total summed across workers.
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.config.parallel = ParallelConfig::new(threads);
        self
    }

    /// Enables/disables the Corollary 2 fast path under
    /// [`Semantics::Exact`] (on by default; [`Semantics::Auto`] always
    /// uses it on fully specified databases — that is its certificate).
    pub fn corollary2_fast_path(mut self, enabled: bool) -> Self {
        self.config.corollary2_fast_path = enabled;
        self
    }

    /// Enables/disables the free-null collapse (component decomposition)
    /// of the Theorem 1 / possible-answer enumerations (on by default).
    /// Answers are bit-identical either way; decomposition evaluates one
    /// canonical image per (core partition, null-block count) instead of
    /// one per kernel mapping, reporting the skipped mappings in
    /// [`Evidence::mappings_pruned`](crate::Evidence::mappings_pruned).
    /// Turning it off pins the classic one-image-per-kernel accounting.
    pub fn decompose(mut self, enabled: bool) -> Self {
        self.config.decompose = enabled;
        self
    }

    /// Caps how many kernel mappings an [`Semantics::Auto`] escalation may
    /// enumerate. When the database's kernel count exceeds the budget, the
    /// engine refuses the hopeless Theorem 1 run and returns the certified
    /// bracket instead: the §5 lower bound as the tuples, plus a certified
    /// upper bound (see [`Certificate::BoundedPair`] and
    /// [`Answers::upper_bound`]) — both polynomial. The budget probe
    /// itself is cheap: the kernel tree is counted with early abort at
    /// `budget + 1`, once per engine. Unset by default (always escalate).
    pub fn mapping_budget(mut self, budget: u64) -> Self {
        self.config.mapping_budget = Some(budget);
        self
    }

    /// Enables/disables the answer cache (on by default): finished answers
    /// are stored per `(prepared query, semantics)` and repeated executions
    /// are served back without re-running any regime, marked with
    /// [`Evidence::cache_hit`]. Can also be toggled on a live engine with
    /// [`Engine::set_cache_enabled`].
    pub fn answer_cache(mut self, enabled: bool) -> Self {
        self.config.answer_cache = enabled;
        self
    }

    /// Caps the answer cache at `capacity` entries (default 4096), with
    /// true LRU eviction at capacity: lookups refresh recency, and the
    /// least-recently-used answer is dropped to make room. `0` disables
    /// caching entirely (every insert is skipped).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Finalizes the engine.
    pub fn build(self) -> Engine {
        Engine {
            id: NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed),
            db: self.db,
            semantics: self.semantics,
            cache: AnswerCache::new(self.config.answer_cache, self.config.cache_capacity),
            config: self.config,
            approx: OnceLock::new(),
            ph1: OnceLock::new(),
            kernel_count: OnceLock::new(),
            decomp: OnceLock::new(),
            epoch: 0,
            counters: DeltaCounters::default(),
        }
    }
}

/// A query-evaluation session over one closed-world logical database.
///
/// `Engine` is the single front door to every evaluation regime the paper
/// describes. Queries are [`prepare`](Engine::prepare)d once (parse,
/// validate, classify, rewrite to `Q̂`, compile to algebra) and executed
/// many times under any [`Semantics`]; every answer carries an
/// [`Evidence`] report with an exactness [`Certificate`].
///
/// # Which theorem justifies which certificate
///
/// | Certificate | Paper result | When issued |
/// |---|---|---|
/// | [`Certificate::ExactTheorem1`] | Theorem 1 | the full mapping enumeration ran (`Exact` semantics off the fast path, or `Auto` escalation) |
/// | [`Certificate::ExactCorollary2`] | Corollary 2 | the database is fully specified and one evaluation over `Ph₁(LB)` answered the query |
/// | [`Certificate::ExactCompleteness`]`(`[`CompletenessTheorem::FullySpecified`]`)` | Theorems 11 + 12 | the §5 approximation ran on a fully specified database |
/// | [`Certificate::ExactCompleteness`]`(`[`CompletenessTheorem::PositiveQuery`]`)` | Theorems 11 + 13 | the §5 approximation ran on a positive first-order query |
/// | [`Certificate::SoundLowerBound`] | Theorem 11 | the §5 approximation ran and no completeness theorem applies |
/// | [`Certificate::PossibleUpperBound`] | dual of Theorem 1 | possible-answer semantics ran |
///
/// Under [`Semantics::Auto`] the engine never returns an uncertified
/// answer: it picks Corollary 2 on fully specified databases, the §5
/// approximation (exact by Theorem 13) on positive first-order queries,
/// and escalates to the Theorem 1 enumeration only when neither
/// completeness theorem applies.
///
/// # Example
///
/// ```
/// use qld_engine::{Engine, Semantics};
/// use qld_core::CwDatabase;
/// use qld_logic::Vocabulary;
///
/// let mut voc = Vocabulary::new();
/// let ids = voc.add_consts(["socrates", "plato", "mystery"]).unwrap();
/// let teaches = voc.add_pred("TEACHES", 2).unwrap();
/// let db = CwDatabase::builder(voc)
///     .fact(teaches, &[ids[0], ids[1]])
///     .unique(ids[0], ids[1])
///     .build()
///     .unwrap();
///
/// let engine = Engine::builder(db).semantics(Semantics::Auto).build();
/// let prepared = engine.prepare_text("(x) . TEACHES(socrates, x)").unwrap();
/// let answers = engine.execute(&prepared).unwrap();
/// assert!(answers.is_exact()); // positive query → Theorem 13 certificate
/// assert_eq!(engine.answer_names(&answers), vec![vec!["plato"]]);
/// ```
#[derive(Debug)]
pub struct Engine {
    id: u64,
    db: CwDatabase,
    semantics: Semantics,
    config: EngineConfig,
    /// §5 machinery (`Ph₂(LB)`, `α_P`, `NE`), built on first use.
    approx: OnceLock<ApproxEngine>,
    /// `Ph₁(LB)`, cached for the Corollary 2 fast path.
    ph1: OnceLock<PhysicalDb>,
    /// Kernel-mapping count probed against `config.mapping_budget`,
    /// computed once per axiom epoch with early abort at `budget + 1`
    /// (reset by [`Engine::apply`] when a delta adds uniqueness axioms —
    /// the count depends only on the axiom set, never on the facts).
    kernel_count: OnceLock<u64>,
    /// Cross-delta cache of the NE-component / free-constant analysis the
    /// decomposed enumeration starts from. Invalidated by [`Engine::apply`]
    /// when a delta adds NE axioms (components can merge), or when an
    /// inserted fact mentions a currently-free constant (that constant
    /// stops being free); insert-only fact deltas over core constants
    /// keep it warm, and [`Evidence::components_reused`] reports the
    /// reuse per answer.
    decomp: OnceLock<DbDecomposition>,
    /// The answer cache (see [`AnswerCache`]).
    cache: AnswerCache,
    /// Database epoch: bumped by every [`Engine::apply`] that changed
    /// anything. Prepared queries record the epoch they were certified
    /// at; a mismatch means the completeness certificate must be
    /// recomputed before it is trusted (see [`Engine::recertify`]).
    epoch: u64,
    /// Cumulative delta bookkeeping (see [`Engine::delta_stats`]).
    counters: DeltaCounters,
}

impl Clone for Engine {
    /// Clones the session configuration and database. The clone keeps the
    /// engine id — prepared queries remain executable on it — but starts
    /// with an **empty** answer cache (cached answers are cheap to
    /// re-derive and a `Mutex`-held map is not meaningfully shareable by
    /// value).
    fn clone(&self) -> Engine {
        Engine {
            id: self.id,
            db: self.db.clone(),
            semantics: self.semantics,
            config: self.config,
            approx: self.approx.clone(),
            ph1: self.ph1.clone(),
            kernel_count: self.kernel_count.clone(),
            decomp: self.decomp.clone(),
            cache: AnswerCache::new(self.cache.is_enabled(), self.config.cache_capacity),
            epoch: self.epoch,
            counters: self.counters.clone(),
        }
    }
}

impl Engine {
    /// Starts configuring an engine over `db`.
    pub fn builder(db: CwDatabase) -> EngineBuilder {
        EngineBuilder::new(db)
    }

    /// An engine with all defaults ([`Semantics::Auto`], naive backend).
    pub fn new(db: CwDatabase) -> Engine {
        EngineBuilder::new(db).build()
    }

    /// The underlying closed-world database.
    pub fn db(&self) -> &CwDatabase {
        &self.db
    }

    /// The session's current default semantics.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// Changes the session's default semantics (prepared queries stay
    /// valid — their artifacts are semantics-independent).
    pub fn set_semantics(&mut self, semantics: Semantics) {
        self.semantics = semantics;
    }

    /// The configured enumeration worker-thread count (`0` = one per CPU;
    /// see [`EngineBuilder::parallelism`]).
    pub fn parallelism(&self) -> usize {
        self.config.parallel.threads
    }

    /// Changes the enumeration worker-thread count (prepared queries stay
    /// valid — the thread count never changes an answer, only how fast the
    /// Theorem 1 and possible-answer enumerations run).
    pub fn set_parallelism(&mut self, threads: usize) {
        self.config.parallel = ParallelConfig::new(threads);
    }

    /// The §5 approximation machinery, built lazily on first use (it
    /// materializes `Ph₂(LB)`, the `α_P` relations, and the configured
    /// `NE` store — all polynomial).
    pub fn approx_engine(&self) -> &ApproxEngine {
        self.approx.get_or_init(|| match self.config.ne_store {
            NeStoreMode::Explicit => ApproxEngine::new(&self.db),
            NeStoreMode::Virtual => ApproxEngine::with_virtual_ne(&self.db),
        })
    }

    fn ph1_db(&self) -> &PhysicalDb {
        self.ph1.get_or_init(|| ph1(&self.db))
    }

    /// Parses and [`prepare`](Engine::prepare)s a query in the surface
    /// syntax.
    pub fn prepare_text(&self, text: &str) -> Result<PreparedQuery, EngineError> {
        self.prepare(parse_query(self.db.voc(), text)?)
    }

    /// Prepares a query: validates it against the vocabulary, classifies
    /// it, determines the completeness certificate, rewrites it to the §5
    /// `Q̂`, and — when the configured backend is [`Backend::Algebra`] —
    /// compiles `Q̂` to an optimized algebra plan (first-order `Q̂` only;
    /// the naive backend evaluates `Q̂` directly, so compiling for it
    /// would be wasted work). The result can be executed any number of
    /// times under any semantics.
    ///
    /// Preparation forces the one-time lazy build of the §5 machinery
    /// ([`Engine::approx_engine`]); the per-query artifacts themselves
    /// (NNF + rewrite, and the plan where applicable) are polynomial in
    /// the query and schema.
    pub fn prepare(&self, query: Query) -> Result<PreparedQuery, EngineError> {
        query.check(self.db.voc())?;
        let class = query.class();
        let completeness = exactness_theorem(&self.db, &query);
        let approx = self.approx_engine();
        let rewritten = approx.rewrite(&query, self.config.alpha)?;
        let plan = match self.config.backend {
            Backend::Naive => None,
            Backend::Algebra(_) => self.compile_plan(&rewritten)?,
        };
        let fingerprint = {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            query.hash(&mut hasher);
            hasher.finish()
        };
        let footprint = QueryFootprint::of(&query);
        Ok(PreparedQuery {
            engine_id: self.id,
            epoch: self.epoch,
            query,
            class,
            completeness,
            rewritten,
            plan,
            fingerprint,
            footprint,
        })
    }

    /// Whether the answer cache is currently enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_enabled()
    }

    /// Turns the answer cache on or off. Disabling stops both lookups and
    /// inserts but keeps existing entries (the database is immutable, so
    /// they stay valid and re-enabling reuses them); use
    /// [`Engine::invalidate_cache`] to drop them.
    pub fn set_cache_enabled(&self, enabled: bool) {
        self.cache.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Number of answers currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Maximum number of answers the cache holds before LRU eviction
    /// (see [`EngineBuilder::cache_capacity`]).
    pub fn cache_capacity(&self) -> usize {
        self.config.cache_capacity
    }

    /// Drops every cached answer unconditionally.
    ///
    /// This blanket hook is *superseded* by the selective invalidation
    /// [`Engine::apply`] performs: deltas evict only the entries whose
    /// predicate footprint they touch, so callers mutating the database
    /// through `apply` never need to call this. It remains for callers
    /// who want a cold cache for other reasons (e.g. benchmarking).
    pub fn invalidate_cache(&self) {
        self.cache.clear();
    }

    /// The current database epoch: `0` at construction, bumped by every
    /// [`Engine::apply`] call that changed the database. Prepared queries
    /// carry the epoch they were certified at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Restores the epoch counter after a WAL recovery: an engine rebuilt
    /// from a checkpoint serialized at epoch `n` must resume the epoch
    /// stream at `n`, not restart it at 0 (replayed records assert that
    /// each lands on exactly the epoch it was logged at).
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Cumulative delta counters for this engine (deltas applied, facts
    /// and axioms inserted, cache entries evicted by footprint
    /// invalidation, certificates re-classified).
    pub fn delta_stats(&self) -> DeltaStats {
        DeltaStats {
            deltas_applied: self.counters.deltas_applied,
            facts_inserted: self.counters.facts_inserted,
            ne_inserted: self.counters.ne_inserted,
            cache_evicted: self.counters.cache_evicted,
            queries_recertified: self.counters.recertified.load(Ordering::Relaxed),
        }
    }

    /// Applies a [`Delta`] — fact insertions and uniqueness-axiom
    /// additions — by **incremental maintenance**, not re-derivation:
    ///
    /// * the [`CwDatabase`] is refreshed in place (sorted inserts);
    /// * `Ph₁(LB)`, if already built, grows by the same sorted inserts
    ///   ([`PhysicalDb::insert_tuple`]);
    /// * the §5 machinery (`Ph₂(LB)`, the `α_P` relations, the `NE`
    ///   store), if already built, is refreshed by
    ///   [`ApproxEngine::apply_delta`] — fact insertions shrink the
    ///   affected `α_P` by a retain pass, axiom insertions extend the
    ///   `NE` store in place and grow the `α_P` relations by rechecking
    ///   only their complements;
    /// * the kernel-count probe for the mapping budget is reset only when
    ///   axioms were added (it never depends on facts);
    /// * the answer cache is invalidated **selectively**: a delta
    ///   touching predicate `P` evicts only the entries whose
    ///   [`QueryFootprint`] mentions `P`, and an axiom delta additionally
    ///   evicts the axiom-sensitive entries (anything that is not a
    ///   positive first-order query under a non-possible semantics).
    ///
    /// Validation is all-or-nothing: every fact and axiom is checked
    /// against the vocabulary first, and an invalid delta changes
    /// nothing. Duplicates of already-present axioms are counted as
    /// no-ops in the returned [`DeltaReport`]; a delta of pure duplicates
    /// leaves the epoch (and cache) untouched.
    ///
    /// Prepared queries stay executable across deltas — their rewrite and
    /// plan reference predicate *ids*, which are stable — but their
    /// completeness certificate may be stale (new axioms can make the
    /// database fully specified, changing how `Auto` routes). The engine
    /// re-certifies stale prepared queries automatically at execution
    /// time; call [`Engine::recertify`] to refresh one eagerly.
    ///
    /// The result is answer-for-answer identical to rebuilding an engine
    /// from the mutated database (property-tested in
    /// `tests/delta_differential.rs`); the cost is proportional to what
    /// changed, not to the database.
    pub fn apply(&mut self, delta: &Delta) -> Result<DeltaReport, EngineError> {
        // All-or-nothing: validate the whole delta before mutating.
        for (p, args) in &delta.facts {
            self.db.check_fact(*p, args)?;
        }
        for &(a, b) in &delta.ne_pairs {
            self.db.check_ne(a, b)?;
        }
        let mut report = DeltaReport::default();
        let mut new_facts: Vec<(PredId, Box<[Elem]>)> = Vec::new();
        for (p, args) in &delta.facts {
            if self.db.insert_fact(*p, args).expect("fact was validated") {
                new_facts.push((*p, args.iter().map(|c| c.0).collect()));
                report.facts_inserted += 1;
            } else {
                report.facts_duplicate += 1;
            }
        }
        let was_fully_specified = self.db.is_fully_specified();
        let mut new_ne: Vec<(Elem, Elem)> = Vec::new();
        for &(a, b) in &delta.ne_pairs {
            if self.db.insert_ne(a, b).expect("axiom was validated") {
                new_ne.push((a.0.min(b.0), a.0.max(b.0)));
                report.ne_inserted += 1;
            } else {
                report.ne_duplicate += 1;
            }
        }
        self.counters.deltas_applied += 1;
        if new_facts.is_empty() && new_ne.is_empty() {
            // Pure duplicates: the database (and every derived structure,
            // cached answer, and certificate) is unchanged.
            report.epoch = self.epoch;
            report.cache_retained = self.cache.len();
            return Ok(report);
        }
        if let Some(ph1_db) = self.ph1.get_mut() {
            for (p, tuple) in &new_facts {
                ph1_db
                    .insert_tuple(*p, tuple)
                    .expect("fact constants are Ph₁ domain elements");
            }
        }
        if let Some(approx) = self.approx.get_mut() {
            approx.apply_delta(&self.db, &new_facts, &new_ne);
        }
        if !new_ne.is_empty() {
            // The respecting-mapping count depends only on the axiom set.
            self.kernel_count = OnceLock::new();
            // New NE edges merge components and un-free their endpoints.
            self.decomp = OnceLock::new();
        } else if let Some(d) = self.decomp.get() {
            // A fact delta never frees a constant, but capturing one ends
            // its freedom: re-analyze only when an inserted fact mentions
            // a currently-free constant. Insert-only deltas over core
            // constants keep the analysis warm across the epoch bump.
            if new_facts
                .iter()
                .any(|(_, tuple)| tuple.iter().any(|&c| d.is_free(c)))
            {
                self.decomp = OnceLock::new();
            }
        }
        let mut touched: Vec<PredId> = new_facts.iter().map(|(p, _)| *p).collect();
        touched.sort_unstable();
        touched.dedup();
        let ne_added = !new_ne.is_empty();
        // When this delta makes the database fully specified, every
        // cached *certificate* goes stale — even the axiom-insensitive
        // positive entries, whose tuples would survive but which a fresh
        // engine now vouches for with Corollary 2 / Theorem 12 instead of
        // Theorem 13 (or Theorem 1 under `Exact`). Cached answers must be
        // bit-identical to a fresh run, evidence included, so the flip
        // (which can happen at most once per engine) evicts everything.
        let flipped = !was_fully_specified && self.db.is_fully_specified();
        let (evicted, retained) = self.cache.evict_where(|footprint, semantics| {
            flipped
                || footprint.mentions_any(&touched)
                || (ne_added && footprint.ne_sensitive(semantics))
        });
        report.cache_evicted = evicted;
        report.cache_retained = retained;
        self.epoch += 1;
        report.epoch = self.epoch;
        self.counters.facts_inserted += report.facts_inserted as u64;
        self.counters.ne_inserted += report.ne_inserted as u64;
        self.counters.cache_evicted += evicted as u64;
        Ok(report)
    }

    /// Re-runs the completeness classification for a prepared query
    /// against the *current* database and stamps it with the current
    /// epoch. Returns whether the certificate changed (e.g. a delta made
    /// the database fully specified, upgrading `None` to Theorem 12 —
    /// `Auto` then stops escalating to Theorem 1 for it).
    ///
    /// Calling this is optional: execution re-certifies stale prepared
    /// queries automatically. An explicit call makes the refresh visible
    /// (and counted once) instead of recomputed per execution.
    pub fn recertify(&self, prepared: &mut PreparedQuery) -> Result<bool, EngineError> {
        if prepared.engine_id != self.id {
            return Err(EngineError::PreparedElsewhere);
        }
        let fresh = exactness_theorem(&self.db, &prepared.query);
        let changed = fresh != prepared.completeness;
        if changed {
            self.counters.recertified.fetch_add(1, Ordering::Relaxed);
        }
        prepared.completeness = fresh;
        prepared.epoch = self.epoch;
        Ok(changed)
    }

    /// The completeness theorem currently in force for a prepared query:
    /// the one certified at prepare time when the epochs match, or a
    /// fresh classification when the database has moved on since. Pure —
    /// no counter side effects (the batch partitioner calls it per
    /// member).
    fn effective_completeness(&self, prepared: &PreparedQuery) -> Option<CompletenessTheorem> {
        if prepared.epoch == self.epoch {
            prepared.completeness
        } else {
            exactness_theorem(&self.db, &prepared.query)
        }
    }

    /// [`Engine::effective_completeness`] plus the automatic arm of the
    /// re-certification counter: a stale prepared query whose verdict
    /// actually moved is counted. Called once per cache-missing
    /// execution — cache hits never re-classify (selective invalidation
    /// guarantees retained entries are certificate-fresh), and once the
    /// fresh answer is cached, later executions hit and stop counting.
    fn refreshed_completeness(&self, prepared: &PreparedQuery) -> Option<CompletenessTheorem> {
        if prepared.epoch == self.epoch {
            return prepared.completeness;
        }
        let fresh = exactness_theorem(&self.db, &prepared.query);
        if fresh != prepared.completeness {
            self.counters.recertified.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Compiles `Q̂` to an optimized algebra plan over the extended
    /// database, or `None` if `Q̂` is second-order.
    fn compile_plan(&self, rewritten: &Query) -> Result<Option<qld_algebra::Plan>, EngineError> {
        if !rewritten.is_first_order() {
            return Ok(None);
        }
        let approx = self.approx_engine();
        let plan = compile_query_ordered(approx.extended_voc(), approx.extended_db(), rewritten)?;
        Ok(Some(optimize(approx.extended_voc(), plan)))
    }

    /// The optimized algebra plan for a prepared query's `Q̂`: the one
    /// cached at prepare time under [`Backend::Algebra`], or compiled on
    /// demand otherwise (e.g. for the CLI's `:explain` on a naive-backend
    /// session). `None` when `Q̂` is second-order.
    pub fn plan_for(
        &self,
        prepared: &PreparedQuery,
    ) -> Result<Option<qld_algebra::Plan>, EngineError> {
        if prepared.engine_id != self.id {
            return Err(EngineError::PreparedElsewhere);
        }
        match prepared.plan() {
            Some(plan) => Ok(Some(plan.clone())),
            None => self.compile_plan(prepared.rewritten()),
        }
    }

    /// Executes a prepared query under the session's default semantics.
    pub fn execute(&self, prepared: &PreparedQuery) -> Result<Answers, EngineError> {
        self.execute_as(prepared, self.semantics)
    }

    /// Executes a prepared query under an explicit semantics, regardless
    /// of the session default. When the answer cache holds this
    /// `(query, semantics)` pair the stored answer is returned immediately
    /// with [`Evidence::cache_hit`] set and zero new mappings; otherwise
    /// the regime runs and the result is cached for next time.
    pub fn execute_as(
        &self,
        prepared: &PreparedQuery,
        semantics: Semantics,
    ) -> Result<Answers, EngineError> {
        if prepared.engine_id != self.id {
            return Err(EngineError::PreparedElsewhere);
        }
        if let Some(hit) = self.cache.lookup(prepared, semantics) {
            return Ok(hit);
        }
        // Classified once per execution (and only on cache misses): the
        // run paths below all dispatch on this value, so a stale prepared
        // query is re-certified exactly once here.
        let completeness = self.refreshed_completeness(prepared);
        let start = Instant::now();
        let outcome = match semantics {
            Semantics::Exact => self.run_exact(prepared, completeness)?,
            Semantics::Approx => self.run_approx(prepared, completeness)?,
            Semantics::Possible => self.run_possible(prepared)?,
            Semantics::Auto => self.run_auto(prepared, completeness)?,
        };
        let answers = package(outcome, semantics, None, start, self.epoch);
        self.cache.insert(prepared, semantics, &answers);
        Ok(answers)
    }

    /// Executes a whole batch of prepared queries under the session's
    /// default semantics, amortizing the mapping enumeration: every query
    /// the configured semantics would send through the Theorem 1
    /// enumeration (or its possible-answer dual) shares **one** pass over
    /// the respecting mappings, instead of re-walking the search tree per
    /// query. See [`Engine::execute_batch_as`].
    pub fn execute_batch(&self, prepared: &[PreparedQuery]) -> Result<Vec<Answers>, EngineError> {
        self.execute_batch_as(prepared, self.semantics)
    }

    /// [`Engine::execute_batch`] under an explicit semantics.
    ///
    /// The batch is partitioned by evaluation route:
    ///
    /// * answers already in the cache are served from it (`cache_hit`);
    /// * queries bound for a certified polynomial path (Corollary 2, the
    ///   §5 approximation, the over-budget bounded pair) run individually
    ///   — they are cheap and share nothing;
    /// * every remaining query joins a shared enumeration group: one call
    ///   into the batched Theorem 1 evaluator (or its possible-answer
    ///   dual), with structurally identical queries deduplicated. Each
    ///   group member's [`Evidence`] reports the group's shared
    ///   `mappings_evaluated` total and [`Evidence::shared_batch`].
    ///
    /// Answers are bit-identical to executing each query separately; the
    /// `i`-th answer corresponds to `prepared[i]`. Timing attribution:
    /// individually-routed members and cache hits time themselves, while
    /// every member of a shared enumeration group reports the *group's*
    /// wall-clock as its `elapsed` — the enumeration ran once for all of
    /// them, so per-member elapsed values must not be summed.
    pub fn execute_batch_as(
        &self,
        prepared: &[PreparedQuery],
        semantics: Semantics,
    ) -> Result<Vec<Answers>, EngineError> {
        for p in prepared {
            if p.engine_id != self.id {
                return Err(EngineError::PreparedElsewhere);
            }
        }
        let mut results: Vec<Option<Answers>> = vec![None; prepared.len()];
        let mut certain_group: Vec<usize> = Vec::new();
        let mut possible_group: Vec<usize> = Vec::new();
        for (i, p) in prepared.iter().enumerate() {
            if let Some(hit) = self.cache.lookup(p, semantics) {
                results[i] = Some(hit);
            } else {
                match self.enumeration_route(self.effective_completeness(p), semantics) {
                    Some(EnumerationKind::Certain) => certain_group.push(i),
                    Some(EnumerationKind::Possible) => possible_group.push(i),
                    None => results[i] = Some(self.execute_as(p, semantics)?),
                }
            }
        }
        self.run_shared_group(
            prepared,
            &certain_group,
            EnumerationKind::Certain,
            semantics,
            &mut results,
        )?;
        self.run_shared_group(
            prepared,
            &possible_group,
            EnumerationKind::Possible,
            semantics,
            &mut results,
        )?;
        Ok(results
            .into_iter()
            .map(|a| a.expect("every batch slot answered"))
            .collect())
    }

    /// Would a query with this (effective) completeness verdict run a
    /// full mapping enumeration under `semantics` (and which one)? These
    /// are exactly the executions worth batching.
    ///
    /// This is the **single** classification both the individual `run_*`
    /// paths and the batch partitioner dispatch on — `run_exact` and
    /// `run_auto` consult it rather than re-testing the fast-path /
    /// completeness / budget conditions, so the batched and per-query
    /// routes cannot drift apart. Callers pass the *effective* verdict
    /// ([`Engine::effective_completeness`] /
    /// [`Engine::refreshed_completeness`]), never a possibly-stale stored
    /// one.
    fn enumeration_route(
        &self,
        completeness: Option<CompletenessTheorem>,
        semantics: Semantics,
    ) -> Option<EnumerationKind> {
        match semantics {
            Semantics::Exact
                if !(self.config.corollary2_fast_path && self.db.is_fully_specified()) =>
            {
                Some(EnumerationKind::Certain)
            }
            Semantics::Auto if completeness.is_none() && !self.over_mapping_budget() => {
                Some(EnumerationKind::Certain)
            }
            Semantics::Possible => Some(EnumerationKind::Possible),
            _ => None,
        }
    }

    /// Runs one shared enumeration group of a batch: deduplicates
    /// structurally identical queries (by full structural equality, so a
    /// fingerprint collision cannot merge distinct queries), makes a
    /// single call into the batched evaluator, and distributes answers
    /// (and the shared stats and wall-clock) to every member slot.
    fn run_shared_group(
        &self,
        prepared: &[PreparedQuery],
        group: &[usize],
        kind: EnumerationKind,
        semantics: Semantics,
        results: &mut [Option<Answers>],
    ) -> Result<(), EngineError> {
        if group.is_empty() {
            return Ok(());
        }
        let start = Instant::now();
        let mut slot_of: HashMap<&Query, usize> = HashMap::new();
        let mut queries: Vec<Query> = Vec::new();
        let mut slots: Vec<usize> = Vec::with_capacity(group.len());
        for &i in group {
            let slot = *slot_of.entry(&prepared[i].query).or_insert_with(|| {
                queries.push(prepared[i].query.clone());
                queries.len() - 1
            });
            slots.push(slot);
        }
        let opts = self.exact_options();
        let (decomp, warm) = self.decomposition();
        let ((rels, stats), regime, certificate) = match kind {
            EnumerationKind::Certain => (
                certain_answers_batch_with_decomp(&self.db, &queries, opts, decomp)?,
                Regime::Theorem1,
                Certificate::ExactTheorem1,
            ),
            EnumerationKind::Possible => (
                possible_answers_batch_with_decomp(&self.db, &queries, opts, decomp)?,
                Regime::PossibleWorlds,
                Certificate::PossibleUpperBound,
            ),
        };
        let shared = (queries.len() > 1).then_some(queries.len());
        for (&i, &slot) in group.iter().zip(slots.iter()) {
            let outcome = RunOutcome {
                tuples: rels[slot].clone(),
                regime,
                certificate,
                components_reused: if warm { stats.components } else { 0 },
                stats,
                upper: None,
            };
            let answers = package(outcome, semantics, shared, start, self.epoch);
            self.cache.insert(&prepared[i], semantics, &answers);
            results[i] = Some(answers);
        }
        Ok(())
    }

    /// One-shot convenience: parse, prepare, and execute under the
    /// session's default semantics.
    pub fn query(&self, text: &str) -> Result<Answers, EngineError> {
        let prepared = self.prepare_text(text)?;
        self.execute(&prepared)
    }

    /// One-shot convenience for an already-built [`Query`].
    pub fn eval(&self, query: &Query) -> Result<Answers, EngineError> {
        let prepared = self.prepare(query.clone())?;
        self.execute(&prepared)
    }

    /// Renders answer tuples with the vocabulary's constant names.
    pub fn answer_names(&self, answers: &Answers) -> Vec<Vec<String>> {
        qld_core::answer_names(self.db.voc(), answers.tuples())
    }

    /// The exact-enumeration options induced by the engine configuration.
    fn exact_options(&self) -> ExactOptions {
        ExactOptions {
            strategy: self.config.strategy,
            corollary2_fast_path: false,
            decompose: self.config.decompose,
            parallel: self.config.parallel,
            ..ExactOptions::new()
        }
    }

    /// The cached decomposition analysis for this epoch, plus whether this
    /// call found it already warm (a previous run populated it and no
    /// delta since invalidated it). `None` when decomposition is disabled.
    fn decomposition(&self) -> (Option<&DbDecomposition>, bool) {
        if !self.config.decompose {
            return (None, false);
        }
        let warm = self.decomp.get().is_some();
        let d = self.decomp.get_or_init(|| analyze_decomposition(&self.db));
        (Some(d), warm)
    }

    /// The full Theorem 1 enumeration — shared by `Exact` semantics and
    /// `Auto` escalation so the two can never diverge.
    fn run_theorem1(&self, prepared: &PreparedQuery) -> Result<RunOutcome, EngineError> {
        let (decomp, warm) = self.decomposition();
        let (rel, stats) =
            certain_answers_with_decomp(&self.db, prepared.query(), self.exact_options(), decomp)?;
        Ok(RunOutcome {
            tuples: rel,
            regime: Regime::Theorem1,
            certificate: Certificate::ExactTheorem1,
            components_reused: if warm { stats.components } else { 0 },
            stats,
            upper: None,
        })
    }

    fn run_exact(
        &self,
        prepared: &PreparedQuery,
        completeness: Option<CompletenessTheorem>,
    ) -> Result<RunOutcome, EngineError> {
        if self
            .enumeration_route(completeness, Semantics::Exact)
            .is_some()
        {
            return self.run_theorem1(prepared);
        }
        Ok(RunOutcome::polynomial(
            eval_query(self.ph1_db(), prepared.query()),
            Regime::Corollary2,
            Certificate::ExactCorollary2,
        ))
    }

    fn run_possible(&self, prepared: &PreparedQuery) -> Result<RunOutcome, EngineError> {
        let (decomp, warm) = self.decomposition();
        let (rel, stats) =
            possible_answers_with_decomp(&self.db, prepared.query(), self.exact_options(), decomp)?;
        Ok(RunOutcome {
            tuples: rel,
            regime: Regime::PossibleWorlds,
            certificate: Certificate::PossibleUpperBound,
            components_reused: if warm { stats.components } else { 0 },
            stats,
            upper: None,
        })
    }

    /// `completeness` is the *effective* verdict computed by the caller —
    /// a delta may have upgraded (or a stale stored verdict would
    /// misstate) which completeness theorem applies.
    fn run_approx(
        &self,
        prepared: &PreparedQuery,
        completeness: Option<CompletenessTheorem>,
    ) -> Result<RunOutcome, EngineError> {
        let rel = self.eval_rewritten(prepared)?;
        let certificate = match completeness {
            Some(theorem) => Certificate::ExactCompleteness(theorem),
            None => Certificate::SoundLowerBound,
        };
        Ok(RunOutcome::polynomial(
            rel,
            Regime::Approximation,
            certificate,
        ))
    }

    /// `completeness` is the *effective* verdict computed by the caller
    /// (stale prepared queries are re-classified against the current
    /// database rather than trusted).
    fn run_auto(
        &self,
        prepared: &PreparedQuery,
        completeness: Option<CompletenessTheorem>,
    ) -> Result<RunOutcome, EngineError> {
        // No completeness theorem and within budget: escalate to Theorem 1
        // (the route predicate is shared with the batch partitioner).
        if self
            .enumeration_route(completeness, Semantics::Auto)
            .is_some()
        {
            return self.run_theorem1(prepared);
        }
        match completeness {
            // Fully specified: one physical evaluation is exact, and is
            // the cheapest certified path (works for second-order queries
            // too, unlike the algebra backend).
            Some(CompletenessTheorem::FullySpecified) => Ok(RunOutcome::polynomial(
                eval_query(self.ph1_db(), prepared.query()),
                Regime::Corollary2,
                Certificate::ExactCorollary2,
            )),
            // Positive first-order: the §5 approximation is exact by
            // Theorems 11 + 13.
            Some(theorem @ CompletenessTheorem::PositiveQuery) => {
                let rel = self.eval_rewritten(prepared)?;
                Ok(RunOutcome::polynomial(
                    rel,
                    Regime::Approximation,
                    Certificate::ExactCompleteness(theorem),
                ))
            }
            // No completeness theorem applies and the cost model says the
            // enumeration is hopeless: certified bracket instead.
            None => self.run_bounded_pair(prepared),
        }
    }

    /// Is the configured mapping budget exceeded? Probes the kernel count
    /// once per engine, aborting the count at `budget + 1` so the probe
    /// itself stays within budget.
    fn over_mapping_budget(&self) -> bool {
        match self.config.mapping_budget {
            None => false,
            Some(budget) => {
                let count = self.kernel_count.get_or_init(|| {
                    count_kernel_mappings_up_to(&self.db, budget.saturating_add(1))
                });
                *count > budget
            }
        }
    }

    /// The over-budget refusal: instead of a hopeless Theorem 1 run,
    /// bracket `Q(LB)` with two polynomial evaluations — the §5
    /// approximation of `Q` below (sound by Theorem 11) and the complement
    /// of the §5 approximation of `¬Q` above (`t` certainly *not* an
    /// answer means `t` is an answer in no model, so approx(¬Q) ⊆
    /// certain(¬Q) excludes only non-answers). Both run on the naive
    /// evaluator regardless of backend: this path must also serve the
    /// second-order rewrites the algebra backend refuses.
    fn run_bounded_pair(&self, prepared: &PreparedQuery) -> Result<RunOutcome, EngineError> {
        let approx = self.approx_engine();
        let lower = eval_query(approx.extended_db(), prepared.rewritten());
        let (head, body) = prepared.query.clone().into_parts();
        let negated = Query::new(head, Formula::not(body))?;
        let neg_rewritten = approx.rewrite(&negated, self.config.alpha)?;
        let certainly_not = eval_query(approx.extended_db(), &neg_rewritten);
        let arity = prepared.query.arity();
        let consts: Vec<Elem> = (0..self.db.num_consts() as Elem).collect();
        let upper = Relation::collect(
            arity,
            TupleSpace::new(&consts, arity).filter(|t| !certainly_not.contains(t)),
        );
        Ok(RunOutcome {
            tuples: lower,
            regime: Regime::Approximation,
            certificate: Certificate::BoundedPair,
            stats: EvalStats::default(),
            components_reused: 0,
            upper: Some(upper),
        })
    }

    /// Evaluates the prepared `Q̂` over `Ph₂(LB)` on the configured
    /// backend.
    fn eval_rewritten(&self, prepared: &PreparedQuery) -> Result<Relation, EngineError> {
        let approx = self.approx_engine();
        match self.config.backend {
            Backend::Naive => Ok(eval_query(approx.extended_db(), prepared.rewritten())),
            Backend::Algebra(opts) => match prepared.plan() {
                Some(plan) => Ok(execute(approx.extended_db(), plan, opts)),
                None => Err(EngineError::Compile(qld_algebra::CompileError::SecondOrder)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_logic::Vocabulary;

    fn tiny_engine() -> Engine {
        let mut voc = Vocabulary::new();
        voc.add_consts(["a", "b"]).unwrap();
        voc.add_pred("P", 1).unwrap();
        let db = CwDatabase::builder(voc).build().unwrap();
        Engine::new(db)
    }

    fn tiny_engine_with_capacity(capacity: usize) -> Engine {
        let mut voc = Vocabulary::new();
        voc.add_consts(["a", "b"]).unwrap();
        voc.add_pred("P", 1).unwrap();
        let db = CwDatabase::builder(voc).build().unwrap();
        Engine::builder(db).cache_capacity(capacity).build()
    }

    #[test]
    fn answer_cache_evicts_least_recently_used() {
        let engine = tiny_engine_with_capacity(2);
        assert_eq!(engine.cache_capacity(), 2);
        let queries = ["P(a)", "P(b)", "!P(a)"];
        let prepared: Vec<_> = queries
            .iter()
            .map(|t| engine.prepare_text(t).unwrap())
            .collect();
        let answers = engine.execute(&prepared[0]).unwrap();
        engine.invalidate_cache();
        // Fill the 2-entry cache with P(a), P(b); touch P(a); insert a
        // third key: the least recently used entry — P(b) — must go.
        engine.cache.insert(&prepared[0], Semantics::Auto, &answers);
        engine.cache.insert(&prepared[1], Semantics::Auto, &answers);
        assert!(engine.cache.lookup(&prepared[0], Semantics::Auto).is_some());
        engine.cache.insert(&prepared[2], Semantics::Auto, &answers);
        assert_eq!(engine.cache.len(), 2);
        assert!(
            engine.cache.lookup(&prepared[0], Semantics::Auto).is_some(),
            "recently-used entry survived"
        );
        assert!(
            engine.cache.lookup(&prepared[1], Semantics::Auto).is_none(),
            "LRU entry evicted"
        );
        assert!(engine.cache.lookup(&prepared[2], Semantics::Auto).is_some());
        // Re-inserting a present key refreshes in place (no eviction).
        engine.cache.insert(&prepared[0], Semantics::Auto, &answers);
        assert_eq!(engine.cache.len(), 2);
        assert!(engine.cache.lookup(&prepared[2], Semantics::Auto).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let engine = tiny_engine_with_capacity(0);
        let prepared = engine.prepare_text("P(a)").unwrap();
        engine.execute(&prepared).unwrap();
        assert_eq!(engine.cache_len(), 0);
    }

    /// Two predicates and a null: the playground for footprint tests.
    fn two_pred_engine() -> Engine {
        let mut voc = Vocabulary::new();
        voc.add_consts(["a", "b", "u"]).unwrap();
        voc.add_pred("P", 1).unwrap();
        voc.add_pred("R", 2).unwrap();
        let db = CwDatabase::builder(voc).build().unwrap();
        Engine::new(db)
    }

    fn ids(engine: &Engine) -> (qld_logic::ConstId, qld_logic::ConstId, qld_logic::ConstId) {
        let voc = engine.db().voc();
        (
            voc.const_id("a").unwrap(),
            voc.const_id("b").unwrap(),
            voc.const_id("u").unwrap(),
        )
    }

    #[test]
    fn apply_is_all_or_nothing() {
        let mut engine = two_pred_engine();
        let (a, _, _) = ids(&engine);
        let p = engine.db().voc().pred_id("P").unwrap();
        // Second entry has the wrong arity: the whole delta is rejected
        // and nothing changes.
        let bad = Delta::new().insert_fact(p, &[a]).insert_fact(p, &[a, a]);
        assert!(matches!(engine.apply(&bad), Err(EngineError::Cw(_))));
        assert_eq!(engine.db().num_facts(), 0);
        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.delta_stats().deltas_applied, 0);
    }

    #[test]
    fn apply_reports_inserts_and_duplicates() {
        let mut engine = two_pred_engine();
        let (a, b, _) = ids(&engine);
        let p = engine.db().voc().pred_id("P").unwrap();
        let delta = Delta::new()
            .insert_fact(p, &[a])
            .insert_fact(p, &[a])
            .assert_ne(a, b)
            .assert_ne(b, a);
        let report = engine.apply(&delta).unwrap();
        assert_eq!(report.facts_inserted, 1);
        assert_eq!(report.facts_duplicate, 1);
        assert_eq!(report.ne_inserted, 1);
        assert_eq!(report.ne_duplicate, 1, "normalized duplicate");
        assert!(report.changed());
        assert_eq!(report.epoch, 1);
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.db().num_facts(), 1);
        assert!(engine.db().is_ne(a, b));
        // A pure-duplicate delta leaves the epoch alone.
        let report = engine.apply(&Delta::new().insert_fact(p, &[a])).unwrap();
        assert!(!report.changed());
        assert_eq!(report.epoch, 1);
        assert_eq!(engine.epoch(), 1);
        let stats = engine.delta_stats();
        assert_eq!(stats.deltas_applied, 2);
        assert_eq!(stats.facts_inserted, 1);
        assert_eq!(stats.ne_inserted, 1);
    }

    #[test]
    fn cache_invalidation_is_selective_by_footprint() {
        let mut engine = two_pred_engine();
        let (a, b, _) = ids(&engine);
        let p = engine.db().voc().pred_id("P").unwrap();
        // Three cached answers: positive on P, positive on R, negation
        // on R (axiom-sensitive).
        let on_p = engine.prepare_text("(x) . P(x)").unwrap();
        let on_r = engine.prepare_text("(x, y) . R(x, y)").unwrap();
        let neg_r = engine.prepare_text("(x) . !R(x, x)").unwrap();
        engine.execute(&on_p).unwrap();
        engine.execute(&on_r).unwrap();
        engine.execute(&neg_r).unwrap();
        assert_eq!(engine.cache_len(), 3);
        // A fact delta on P touches only the P entry.
        let report = engine.apply(&Delta::new().insert_fact(p, &[a])).unwrap();
        assert_eq!(report.cache_evicted, 1);
        assert_eq!(report.cache_retained, 2);
        assert!(engine.execute(&on_r).unwrap().evidence().cache_hit);
        assert!(!engine.execute(&on_p).unwrap().evidence().cache_hit);
        // An axiom delta evicts the axiom-sensitive entry but keeps the
        // positive ones (Theorem 13 makes them axiom-independent).
        engine.execute(&neg_r).unwrap(); // re-cache
        let report = engine.apply(&Delta::new().assert_ne(a, b)).unwrap();
        assert_eq!(report.cache_evicted, 1);
        assert!(engine.execute(&on_r).unwrap().evidence().cache_hit);
        assert!(!engine.execute(&neg_r).unwrap().evidence().cache_hit);
        // The retained answers are still byte-identical to fresh runs.
        let fresh = Engine::new(engine.db().clone());
        for text in ["(x) . P(x)", "(x, y) . R(x, y)", "(x) . !R(x, x)"] {
            let cached = engine.execute(&engine.prepare_text(text).unwrap()).unwrap();
            let truth = fresh.execute(&fresh.prepare_text(text).unwrap()).unwrap();
            assert_eq!(cached.tuples(), truth.tuples(), "{text}");
        }
    }

    #[test]
    fn apply_matches_rebuilt_engine_with_built_structures() {
        let mut engine = two_pred_engine();
        let (a, b, u) = ids(&engine);
        let p = engine.db().voc().pred_id("P").unwrap();
        let r = engine.db().voc().pred_id("R").unwrap();
        let texts = [
            "(x) . P(x)",
            "(x) . !P(x)",
            "(x, y) . R(x, y) & x != y",
            "exists x. R(x, x) | P(x)",
        ];
        // Force Ph₁ and the §5 machinery to exist *before* the deltas, so
        // the incremental refresh (not a lazy rebuild) is what's tested.
        for text in texts {
            let prepared = engine.prepare_text(text).unwrap();
            engine.execute_as(&prepared, Semantics::Exact).unwrap();
        }
        let script = [
            Delta::new().insert_fact(p, &[a]).insert_fact(r, &[a, u]),
            Delta::new().assert_ne(a, b).assert_ne(u, a),
            Delta::new().insert_fact(r, &[u, b]),
        ];
        for delta in &script {
            engine.apply(delta).unwrap();
            let rebuilt = Engine::new(engine.db().clone());
            for text in texts {
                let inc = engine.prepare_text(text).unwrap();
                let fresh = rebuilt.prepare_text(text).unwrap();
                for semantics in Semantics::ALL {
                    assert_eq!(
                        engine.execute_as(&inc, semantics).unwrap().tuples(),
                        rebuilt.execute_as(&fresh, semantics).unwrap().tuples(),
                        "{text} under {semantics:?} diverged from rebuild"
                    );
                }
            }
        }
    }

    #[test]
    fn deltas_recertify_prepared_queries() {
        let mut engine = two_pred_engine();
        let (a, b, u) = ids(&engine);
        // Negation on a partial database: no completeness theorem.
        let mut prepared = engine.prepare_text("(x) . !P(x)").unwrap();
        assert_eq!(prepared.completeness(), None);
        let auto = engine.execute(&prepared).unwrap();
        assert_eq!(auto.evidence().regime, Regime::Theorem1);
        // Pin every identity down: the database becomes fully specified.
        engine
            .apply(&Delta::new().assert_ne(a, b).assert_ne(a, u).assert_ne(b, u))
            .unwrap();
        assert!(engine.db().is_fully_specified());
        // The *stale* prepared query already routes through the upgraded
        // certificate (no Theorem 1 escalation)…
        assert_eq!(prepared.epoch(), 0);
        let upgraded = engine.execute(&prepared).unwrap();
        assert_eq!(upgraded.evidence().regime, Regime::Corollary2);
        assert!(upgraded.is_exact());
        // …and an explicit recertify makes the upgrade visible.
        assert!(engine.recertify(&mut prepared).unwrap());
        assert_eq!(
            prepared.completeness(),
            Some(CompletenessTheorem::FullySpecified)
        );
        assert_eq!(prepared.epoch(), engine.epoch());
        assert!(!engine.recertify(&mut prepared).unwrap(), "now stable");
        assert!(engine.delta_stats().queries_recertified >= 1);
    }

    #[test]
    fn fully_specifying_delta_evicts_certificate_stale_positive_entries() {
        // A positive query's *tuples* survive any axiom delta (Theorem
        // 13), but once the database becomes fully specified a fresh
        // engine certifies them differently (Corollary 2 / Theorem 12) —
        // so the flip must evict even axiom-insensitive entries, keeping
        // cached answers bit-identical to a rebuild, evidence included.
        let mut voc = Vocabulary::new();
        let ids = voc.add_consts(["a", "b"]).unwrap();
        let p = voc.add_pred("P", 1).unwrap();
        let db = CwDatabase::builder(voc).fact(p, &[ids[0]]).build().unwrap();
        let mut engine = Engine::new(db);
        let prepared = engine.prepare_text("(x) . P(x)").unwrap();
        for semantics in [Semantics::Exact, Semantics::Auto, Semantics::Approx] {
            engine.execute_as(&prepared, semantics).unwrap();
        }
        let report = engine
            .apply(&Delta::new().assert_ne(ids[0], ids[1]))
            .unwrap();
        assert!(engine.db().is_fully_specified());
        assert_eq!(report.cache_evicted, 3, "the flip evicts everything");
        let rebuilt = Engine::new(engine.db().clone());
        let fresh = rebuilt.prepare_text("(x) . P(x)").unwrap();
        for semantics in [Semantics::Exact, Semantics::Auto, Semantics::Approx] {
            let inc = engine.execute_as(&prepared, semantics).unwrap();
            let truth = rebuilt.execute_as(&fresh, semantics).unwrap();
            assert_eq!(inc.tuples(), truth.tuples(), "{semantics:?}");
            assert_eq!(
                inc.evidence().certificate,
                truth.evidence().certificate,
                "{semantics:?} certificate must match a rebuilt engine"
            );
        }
    }

    #[test]
    fn mapping_budget_probe_resets_on_axiom_deltas() {
        let mut voc = Vocabulary::new();
        let ids = voc.add_consts(["a", "b", "u"]).unwrap();
        voc.add_pred("P", 1).unwrap();
        let db = CwDatabase::builder(voc).build().unwrap();
        // No axioms: 5 kernel mappings (the partitions of 3 constants) —
        // over a budget of 3, so Auto refuses the escalation.
        let mut engine = Engine::builder(db).mapping_budget(3).build();
        let text = "(x) . !P(x)";
        let bounded = engine.query(text).unwrap();
        assert_eq!(bounded.evidence().certificate, Certificate::BoundedPair);
        // One axiom cuts the kernel count to 3 (partitions separating a
        // and b): the probe must be re-run, and Auto now escalates.
        engine
            .apply(&Delta::new().assert_ne(ids[0], ids[1]))
            .unwrap();
        let exact = engine.query(text).unwrap();
        assert_eq!(exact.evidence().certificate, Certificate::ExactTheorem1);
        assert!(exact.evidence().mappings_evaluated > 0);
    }

    #[test]
    fn decomposition_cache_reuse_and_invalidation() {
        let mut voc = Vocabulary::new();
        let ids = voc.add_consts(["a", "b", "u", "v"]).unwrap();
        let p = voc.add_pred("P", 1).unwrap();
        // a ≠ b with P(a): `u` and `v` are free (no NE edge, no fact).
        let db = CwDatabase::builder(voc)
            .fact(p, &[ids[0]])
            .unique(ids[0], ids[1])
            .build()
            .unwrap();
        let mut engine = Engine::builder(db)
            .semantics(Semantics::Exact)
            .answer_cache(false)
            .build();
        let text = "(x) . !P(x)";
        // First decomposed run pays the analysis (nothing reused)…
        let first = engine.query(text).unwrap();
        assert!(first.evidence().components > 0);
        assert!(first.evidence().mappings_pruned > 0);
        assert_eq!(first.evidence().components_reused, 0);
        // …and every later run at the same epoch reuses it.
        let second = engine.query(text).unwrap();
        assert_eq!(second.evidence().components, first.evidence().components);
        assert_eq!(
            second.evidence().components_reused,
            second.evidence().components
        );
        // An insert-only fact delta over *core* constants keeps the
        // analysis warm across the epoch bump…
        engine
            .apply(&Delta::new().insert_fact(p, &[ids[1]]))
            .unwrap();
        let warm = engine.query(text).unwrap();
        assert_eq!(
            warm.evidence().components_reused,
            warm.evidence().components
        );
        // …a fact capturing a free constant re-analyzes…
        engine
            .apply(&Delta::new().insert_fact(p, &[ids[2]]))
            .unwrap();
        let recooled = engine.query(text).unwrap();
        assert_eq!(recooled.evidence().components_reused, 0);
        // …and so does a new NE axiom (components can merge).
        engine.query(text).unwrap();
        engine
            .apply(&Delta::new().assert_ne(ids[2], ids[3]))
            .unwrap();
        let after_ne = engine.query(text).unwrap();
        assert_eq!(after_ne.evidence().components_reused, 0);
    }

    #[test]
    fn decompose_knob_pins_classic_accounting() {
        let mut voc = Vocabulary::new();
        let ids = voc.add_consts(["a", "b", "u"]).unwrap();
        let p = voc.add_pred("P", 1).unwrap();
        let db = CwDatabase::builder(voc)
            .fact(p, &[ids[0]])
            .unique(ids[0], ids[1])
            .build()
            .unwrap();
        let classic = Engine::builder(db.clone())
            .semantics(Semantics::Exact)
            .decompose(false)
            .answer_cache(false)
            .build();
        let decomposed = Engine::builder(db)
            .semantics(Semantics::Exact)
            .answer_cache(false)
            .build();
        let text = "(x) . !P(x)";
        let a = classic.query(text).unwrap();
        let b = decomposed.query(text).unwrap();
        assert_eq!(a.tuples(), b.tuples());
        assert_eq!(a.evidence().components, 0);
        assert_eq!(a.evidence().mappings_pruned, 0);
        assert!(b.evidence().mappings_pruned > 0);
        assert!(a.evidence().mappings_evaluated > b.evidence().mappings_evaluated);
    }

    #[test]
    fn cache_lookup_rejects_fingerprint_collisions() {
        let engine = tiny_engine();
        let p1 = engine.prepare_text("P(a)").unwrap();
        let p2 = engine.prepare_text("P(b)").unwrap();
        let answers = engine.execute(&p1).unwrap();
        engine.invalidate_cache();
        engine.cache.insert(&p1, Semantics::Auto, &answers);
        // Simulate a 64-bit fingerprint collision: a *different* query
        // carrying p1's fingerprint must miss, not be served p1's answer.
        let forged = PreparedQuery {
            fingerprint: p1.fingerprint,
            ..p2.clone()
        };
        assert!(engine.cache.lookup(&forged, Semantics::Auto).is_none());
        assert!(engine.cache.lookup(&p1, Semantics::Auto).is_some());
    }
}
