//! The single error type every engine entry point returns.

use qld_algebra::CompileError;
use qld_approx::ApproxError;
use qld_core::CwError;
use qld_logic::LogicError;
use std::fmt;

/// Unified error for the whole evaluation pipeline.
///
/// Every layer's error converts into this via `From`, so callers of
/// [`Engine`](crate::Engine) handle exactly one error type no matter which
/// semantics or backend ran: parse/validation failures surface as
/// [`EngineError::Logic`], database-construction failures as
/// [`EngineError::Cw`], and algebra-compilation failures as
/// [`EngineError::Compile`]. [`ApproxError`] is *flattened* — it is itself
/// a union of logic and compile errors, so its `From` impl routes each
/// case to the matching variant rather than adding a nesting level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Ill-formed query: parse error, arity mismatch, unknown symbol,
    /// free-variable problems.
    Logic(LogicError),
    /// Ill-formed closed-world database (builder/validation failures).
    Cw(CwError),
    /// The relational-algebra backend refused the query (e.g. a
    /// second-order query routed to [`Backend::Algebra`]).
    ///
    /// [`Backend::Algebra`]: qld_approx::Backend::Algebra
    Compile(CompileError),
    /// A [`PreparedQuery`](crate::PreparedQuery) was executed on an engine
    /// other than the one that prepared it. Prepared artifacts reference
    /// the preparing engine's extended vocabulary, so they are not
    /// portable across engines.
    PreparedElsewhere,
    /// The write-ahead log failed (storage error on append, sync, or
    /// checkpoint) or recovery found an inconsistent log. Carries the
    /// underlying diagnostic; the database itself is untouched, but a
    /// durable engine whose log failed should be abandoned and
    /// recovered.
    Durability(String),
    /// The engine is serving as a read-only replication follower:
    /// mutations must go to the primary (or wait for a `promote`). The
    /// `Display` text deliberately starts with `read-only` so the server
    /// surfaces it as `error: read-only …` on the wire.
    ReadOnly,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Logic(e) => write!(f, "{e}"),
            EngineError::Cw(e) => write!(f, "{e}"),
            EngineError::Compile(e) => write!(f, "{e}"),
            EngineError::PreparedElsewhere => write!(
                f,
                "prepared query belongs to a different engine; re-prepare it on this one"
            ),
            EngineError::Durability(e) => write!(f, "durability: {e}"),
            EngineError::ReadOnly => write!(
                f,
                "read-only: this engine is a replication follower; send writes to the primary"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<LogicError> for EngineError {
    fn from(e: LogicError) -> Self {
        EngineError::Logic(e)
    }
}

impl From<CwError> for EngineError {
    fn from(e: CwError) -> Self {
        EngineError::Cw(e)
    }
}

impl From<CompileError> for EngineError {
    fn from(e: CompileError) -> Self {
        EngineError::Compile(e)
    }
}

impl From<ApproxError> for EngineError {
    fn from(e: ApproxError) -> Self {
        match e {
            ApproxError::Logic(l) => EngineError::Logic(l),
            ApproxError::Compile(c) => EngineError::Compile(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_error_flattens() {
        let e = ApproxError::Compile(CompileError::SecondOrder);
        assert_eq!(
            EngineError::from(e),
            EngineError::Compile(CompileError::SecondOrder)
        );
        let e = ApproxError::Logic(LogicError::UnknownSymbol("x".into()));
        assert!(matches!(EngineError::from(e), EngineError::Logic(_)));
    }

    #[test]
    fn displays_inner_message() {
        let e = EngineError::Compile(CompileError::SecondOrder);
        assert!(e.to_string().contains("second-order"));
    }
}
