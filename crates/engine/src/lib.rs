//! One engine to query them all: the unified session API over every
//! evaluation regime of Vardi's *Querying Logical Databases*.
//!
//! The paper's point is that a single logical database admits several
//! evaluation regimes with different cost/guarantee trade-offs:
//!
//! * **Theorem 1** — exact certain answers by enumerating respecting
//!   mappings (exponential; co-NP-hard data complexity by Theorem 5);
//! * **Corollary 2** — when the database is fully specified, one
//!   evaluation over `Ph₁(LB)` is exact;
//! * **§5 (Theorems 11–14)** — a polynomial approximation on a standard
//!   relational system: always sound, complete on fully specified
//!   databases (Thm 12) and positive queries (Thm 13);
//! * the **possible-answer** dual — tuples true in some model.
//!
//! [`Engine`] packages all of them behind one session API:
//!
//! * [`Engine::builder`] configures semantics ([`Semantics`]), the §5
//!   execution backend, `α_P` realization, `NE` storage, and the
//!   Theorem 1 mapping-enumeration strategy;
//! * [`Engine::prepare`] turns a query into a [`PreparedQuery`] —
//!   parse/validate/rewrite/compile once, execute many;
//! * execution returns [`Answers`]: the tuples plus an [`Evidence`]
//!   report saying which [`Regime`] ran, how long it took, and — the
//!   crucial part — a [`Certificate`] stating how the tuples relate to
//!   the true certain answers and which theorem proves it;
//! * every failure is a single [`EngineError`];
//! * [`Engine::apply`] mutates the database through [`Delta`]s with
//!   incremental maintenance of every derived structure (`Ph₁`, `Ph₂`,
//!   `α_P`, the `NE` store) and *selective* answer-cache invalidation
//!   keyed on each entry's [`QueryFootprint`];
//! * [`SharedEngine`] lifts one engine to concurrent multi-session
//!   serving: `Send + Sync`, wait-free readers on immutable epoch-stamped
//!   [`EngineSnapshot`]s, a single writer publishing [`Delta`]s
//!   atomically, and a sharded answer cache keyed
//!   `(fingerprint, semantics, epoch)` so stale hits are structurally
//!   impossible.
//!
//! Under [`Semantics::Auto`] the engine is a *certifying dispatcher*: it
//! runs the cheapest path the paper licenses as exact and escalates to
//! the exponential Theorem 1 enumeration only when no completeness
//! theorem applies — so callers get polynomial evaluation whenever the
//! theory permits it, without guessing when the cheap answer is the real
//! one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod concurrent;
mod delta;
mod durable;
mod error;
mod evidence;
mod prepared;
mod session;

pub use concurrent::{
    CommitFeed, EngineSnapshot, SharedEngine, SharedSession, SharedStats, SnapshotStats,
};
pub use delta::{Delta, DeltaReport, DeltaStats, QueryFootprint};
pub use durable::{DurabilityConfig, RecoveryReport};
pub use error::EngineError;
pub use evidence::{Answers, Certificate, Evidence, Regime, Semantics};
pub use prepared::PreparedQuery;
pub use session::{Engine, EngineBuilder, NeStoreMode};

// The configuration vocabulary callers need alongside the builder.
pub use qld_approx::{AlphaMode, Backend, CompletenessTheorem};
// The durability vocabulary callers need alongside `SharedEngine::durable`
// (storage backends, fsync policies, and the fault injector the crash
// tests drive).
pub use qld_core::exact::MappingStrategy;
pub use qld_core::mappings::ParallelConfig;
pub use qld_wal::{
    has_state as wal_has_state, DiskStorage, FaultPlan, FaultyStorage, FsyncPolicy, MemStorage,
    ReadOnlyStorage, Storage, WalConfig, WalRecord, WalStats,
};

#[cfg(test)]
mod tests {
    use super::*;
    use qld_core::{certain_answers, possible_answers, CwDatabase};
    use qld_logic::Vocabulary;

    /// socrates/plato/aristotle pairwise distinct; `mystery` unknown.
    fn teaching() -> CwDatabase {
        let mut voc = Vocabulary::new();
        let ids = voc
            .add_consts(["socrates", "plato", "aristotle", "mystery"])
            .unwrap();
        let teaches = voc.add_pred("TEACHES", 2).unwrap();
        CwDatabase::builder(voc)
            .fact(teaches, &[ids[0], ids[1]])
            .pairwise_unique(&ids[..3])
            .build()
            .unwrap()
    }

    fn fully_specified() -> CwDatabase {
        let mut voc = Vocabulary::new();
        let ids = voc.add_consts(["a", "b", "c"]).unwrap();
        let r = voc.add_pred("R", 2).unwrap();
        CwDatabase::builder(voc)
            .fact(r, &[ids[0], ids[1]])
            .fact(r, &[ids[1], ids[2]])
            .fully_specified()
            .build()
            .unwrap()
    }

    #[test]
    fn auto_routes_positive_queries_through_the_approximation() {
        let engine = Engine::new(teaching());
        let ans = engine.query("(x) . TEACHES(socrates, x)").unwrap();
        assert_eq!(ans.evidence().regime, Regime::Approximation);
        assert_eq!(
            ans.evidence().certificate,
            Certificate::ExactCompleteness(CompletenessTheorem::PositiveQuery)
        );
        assert!(ans.is_exact());
        assert_eq!(engine.answer_names(&ans), vec![vec!["plato"]]);
    }

    #[test]
    fn auto_uses_corollary2_on_fully_specified_databases() {
        let engine = Engine::new(fully_specified());
        let ans = engine.query("(x) . !R(x, x)").unwrap();
        assert_eq!(ans.evidence().regime, Regime::Corollary2);
        assert_eq!(ans.evidence().certificate, Certificate::ExactCorollary2);
        assert_eq!(
            ans.into_tuples(),
            certain_answers(
                engine.db(),
                &engine.prepare_text("(x) . !R(x, x)").unwrap().query
            )
            .unwrap()
        );
    }

    #[test]
    fn auto_escalates_to_theorem1_only_without_a_certificate() {
        let engine = Engine::new(teaching());
        let ans = engine.query("(x) . !TEACHES(socrates, x)").unwrap();
        assert_eq!(ans.evidence().regime, Regime::Theorem1);
        assert_eq!(ans.evidence().certificate, Certificate::ExactTheorem1);
        assert!(ans.evidence().mappings_evaluated > 0);
    }

    #[test]
    fn explicit_semantics_run_their_regime() {
        let db = teaching();
        let mut engine = Engine::new(db.clone());
        let prepared = engine.prepare_text("(x) . TEACHES(socrates, x)").unwrap();

        let exact = engine.execute_as(&prepared, Semantics::Exact).unwrap();
        assert_eq!(exact.evidence().regime, Regime::Theorem1);
        assert_eq!(
            *exact.tuples(),
            certain_answers(&db, prepared.query()).unwrap()
        );

        let approx = engine.execute_as(&prepared, Semantics::Approx).unwrap();
        assert_eq!(approx.evidence().regime, Regime::Approximation);

        let possible = engine.execute_as(&prepared, Semantics::Possible).unwrap();
        assert_eq!(
            possible.evidence().certificate,
            Certificate::PossibleUpperBound
        );
        assert_eq!(
            *possible.tuples(),
            possible_answers(&db, prepared.query()).unwrap()
        );
        assert!(exact.tuples().is_subset_of(possible.tuples()));

        engine.set_semantics(Semantics::Possible);
        assert_eq!(engine.semantics(), Semantics::Possible);
        let via_default = engine.execute(&prepared).unwrap();
        assert_eq!(via_default.tuples(), possible.tuples());
    }

    #[test]
    fn approx_semantics_reports_sound_lower_bound_without_certificate() {
        // The known incompleteness example: P(u) ∨ u ≠ a is certain but
        // the approximation misses it — the certificate must say "lower
        // bound", not "exact".
        let mut voc = Vocabulary::new();
        let ids = voc.add_consts(["a", "b", "u"]).unwrap();
        let p = voc.add_pred("P", 1).unwrap();
        let db = CwDatabase::builder(voc)
            .fact(p, &[ids[0]])
            .unique(ids[0], ids[1])
            .build()
            .unwrap();
        let engine = Engine::builder(db).semantics(Semantics::Approx).build();
        let ans = engine.query("P(u) | u != a").unwrap();
        assert_eq!(ans.evidence().certificate, Certificate::SoundLowerBound);
        assert!(!ans.is_exact());
        assert!(ans.is_empty(), "the approximation misses the tautology");
        // Auto on the same query escalates and finds it.
        let auto = engine
            .execute_as(
                &engine.prepare_text("P(u) | u != a").unwrap(),
                Semantics::Auto,
            )
            .unwrap();
        assert!(auto.is_exact());
        assert!(auto.holds());
    }

    #[test]
    fn algebra_backend_and_virtual_ne_agree_with_defaults() {
        let db = teaching();
        let reference = Engine::new(db.clone());
        let configured = Engine::builder(db)
            .backend(Backend::Algebra(qld_algebra::ExecOptions::default()))
            .alpha_mode(AlphaMode::Lemma10)
            .ne_store(NeStoreMode::Virtual)
            .semantics(Semantics::Approx)
            .build();
        for text in [
            "(x) . TEACHES(socrates, x)",
            "(x) . !TEACHES(socrates, x)",
            "(x) . x != plato",
            "exists x. TEACHES(x, plato)",
        ] {
            let a = reference
                .execute_as(&reference.prepare_text(text).unwrap(), Semantics::Approx)
                .unwrap();
            let b = configured.query(text).unwrap();
            assert_eq!(a.tuples(), b.tuples(), "config mismatch on {text}");
        }
    }

    #[test]
    fn second_order_query_on_algebra_backend_is_a_compile_error() {
        let engine = Engine::builder(teaching())
            .backend(Backend::Algebra(qld_algebra::ExecOptions::default()))
            .semantics(Semantics::Approx)
            .build();
        let prepared = engine
            .prepare_text("exists2 ?S:1. ?S(plato) & !?S(aristotle)")
            .unwrap();
        assert!(prepared.plan().is_none());
        assert!(matches!(
            engine.execute(&prepared),
            Err(EngineError::Compile(_))
        ));
        // …but Auto still answers it (escalation runs Theorem 1).
        assert!(engine.execute_as(&prepared, Semantics::Auto).is_ok());
    }

    #[test]
    fn prepared_queries_are_engine_bound() {
        let a = Engine::new(teaching());
        let b = Engine::new(teaching());
        let prepared = a.prepare_text("(x) . TEACHES(socrates, x)").unwrap();
        assert_eq!(
            b.execute(&prepared).unwrap_err(),
            EngineError::PreparedElsewhere
        );
    }

    #[test]
    fn invalid_queries_are_one_error_type() {
        let engine = Engine::new(teaching());
        assert!(matches!(engine.query("NOPE("), Err(EngineError::Logic(_))));
        assert!(matches!(
            engine.query("(x) . UNKNOWN_PRED(x)"),
            Err(EngineError::Logic(_))
        ));
    }

    #[test]
    fn mapping_strategy_is_respected() {
        let db = teaching();
        let kern = Engine::builder(db.clone())
            .semantics(Semantics::Exact)
            .mapping_strategy(MappingStrategy::Kernels)
            .build();
        let raw = Engine::builder(db)
            .semantics(Semantics::Exact)
            .mapping_strategy(MappingStrategy::RawMappings)
            .build();
        let q = "forall x. TEACHES(socrates, x) -> x != aristotle";
        let a = kern.query(q).unwrap();
        let b = raw.query(q).unwrap();
        assert_eq!(a.tuples(), b.tuples());
        // Raw enumeration visits at least as many mappings as the kernel
        // canonicalization.
        assert!(b.evidence().mappings_evaluated >= a.evidence().mappings_evaluated);
    }

    #[test]
    fn parallelism_is_bit_identical_and_reports_workers() {
        let db = teaching();
        // Cache off: this test re-executes the same queries and asserts
        // fresh per-run evidence (worker counts), which a cache hit would
        // — correctly — short-circuit.
        let sequential = Engine::builder(db.clone())
            .semantics(Semantics::Exact)
            .parallelism(1)
            .answer_cache(false)
            .build();
        for threads in [2usize, 4, 8] {
            let parallel = Engine::builder(db.clone())
                .semantics(Semantics::Exact)
                .parallelism(threads)
                .answer_cache(false)
                .build();
            assert_eq!(parallel.parallelism(), threads);
            for text in [
                "(x) . !TEACHES(socrates, x)",
                "(x, y) . TEACHES(x, y)",
                "forall x. TEACHES(socrates, x) -> x != aristotle",
            ] {
                let a = sequential.query(text).unwrap();
                let b = parallel.query(text).unwrap();
                assert_eq!(a.tuples(), b.tuples(), "{text} at {threads} threads");
                assert_eq!(a.evidence().workers_used, 1);
                assert!(b.evidence().workers_used >= 1);
                // Possible answers run through the same worker pool.
                let pa = sequential
                    .execute_as(&sequential.prepare_text(text).unwrap(), Semantics::Possible)
                    .unwrap();
                let pb = parallel
                    .execute_as(&parallel.prepare_text(text).unwrap(), Semantics::Possible)
                    .unwrap();
                assert_eq!(pa.tuples(), pb.tuples(), "possible {text}");
            }
        }
        // The knob is also mutable on a live session.
        let mut engine = Engine::new(teaching());
        engine.set_parallelism(2);
        assert_eq!(engine.parallelism(), 2);
        let ans = engine.query("(x) . !TEACHES(socrates, x)").unwrap();
        assert!(ans.evidence().workers_used >= 1);
    }

    #[test]
    fn execute_batch_matches_individual_execution() {
        let db = teaching();
        let engine = Engine::builder(db.clone())
            .semantics(Semantics::Exact)
            .answer_cache(false)
            .build();
        let reference = Engine::builder(db).answer_cache(false).build();
        let texts = [
            "(x) . !TEACHES(socrates, x)",
            "(x, y) . TEACHES(x, y)",
            "TEACHES(socrates, mystery)",
        ];
        let prepared: Vec<_> = texts
            .iter()
            .map(|t| engine.prepare_text(t).unwrap())
            .collect();
        for semantics in Semantics::ALL {
            let batch = engine.execute_batch_as(&prepared, semantics).unwrap();
            assert_eq!(batch.len(), prepared.len());
            for (i, t) in texts.iter().enumerate() {
                let solo = reference
                    .execute_as(&reference.prepare_text(t).unwrap(), semantics)
                    .unwrap();
                assert_eq!(batch[i].tuples(), solo.tuples(), "{semantics:?} on {t}");
            }
        }
        // Theorem-1-bound queries under Exact share one enumeration: all
        // three report the same shared total and the batch size.
        let batch = engine
            .execute_batch_as(&prepared, Semantics::Exact)
            .unwrap();
        let shared = batch[0].evidence().mappings_evaluated;
        assert!(shared > 0);
        for a in &batch {
            assert_eq!(a.evidence().mappings_evaluated, shared);
            assert_eq!(a.evidence().shared_batch, Some(3));
            assert!(a.evidence().workers_used >= 1);
        }
    }

    #[test]
    fn execute_batch_deduplicates_and_serves_cache() {
        let engine = Engine::builder(teaching())
            .semantics(Semantics::Exact)
            .build();
        let p1 = engine.prepare_text("(x) . !TEACHES(socrates, x)").unwrap();
        let p2 = engine.prepare_text("(x) . !TEACHES(socrates, x)").unwrap();
        let p3 = engine.prepare_text("(x, y) . TEACHES(x, y)").unwrap();
        // p1 and p2 are structurally identical: the shared group holds two
        // distinct queries, not three.
        let batch = engine.execute_batch(&[p1.clone(), p2.clone(), p3]).unwrap();
        assert_eq!(batch[0].tuples(), batch[1].tuples());
        assert_eq!(batch[0].evidence().shared_batch, Some(2));
        assert!(!batch[0].evidence().cache_hit);
        // A second batch over cached queries enumerates nothing.
        let again = engine.execute_batch(&[p1, p2]).unwrap();
        for a in &again {
            assert!(a.evidence().cache_hit);
            assert_eq!(a.evidence().mappings_evaluated, 0);
        }
        assert_eq!(again[0].tuples(), batch[0].tuples());
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = Engine::new(teaching());
        assert!(engine.execute_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn batch_rejects_foreign_prepared_queries() {
        let a = Engine::new(teaching());
        let b = Engine::new(teaching());
        let p = a.prepare_text("TEACHES(socrates, plato)").unwrap();
        assert_eq!(
            b.execute_batch(&[p]).unwrap_err(),
            EngineError::PreparedElsewhere
        );
    }

    #[test]
    fn cache_serves_repeated_executions() {
        let engine = Engine::builder(teaching())
            .semantics(Semantics::Exact)
            .build();
        assert!(engine.cache_enabled());
        let prepared = engine.prepare_text("(x) . !TEACHES(socrates, x)").unwrap();
        let first = engine.execute(&prepared).unwrap();
        assert!(!first.evidence().cache_hit);
        assert!(first.evidence().mappings_evaluated > 0);
        assert_eq!(engine.cache_len(), 1);

        let second = engine.execute(&prepared).unwrap();
        assert!(second.evidence().cache_hit);
        assert_eq!(second.evidence().mappings_evaluated, 0);
        assert_eq!(second.evidence().workers_used, 0);
        assert_eq!(second.tuples(), first.tuples());
        assert_eq!(second.evidence().certificate, first.evidence().certificate);
        assert_eq!(second.evidence().regime, first.evidence().regime);

        // Different semantics: separate cache slot, fresh run.
        let possible = engine.execute_as(&prepared, Semantics::Possible).unwrap();
        assert!(!possible.evidence().cache_hit);
        assert_eq!(engine.cache_len(), 2);

        // Invalidation empties the cache; the next run is fresh again.
        engine.invalidate_cache();
        assert_eq!(engine.cache_len(), 0);
        let third = engine.execute(&prepared).unwrap();
        assert!(!third.evidence().cache_hit);
        assert_eq!(third.tuples(), first.tuples());

        // Toggling the cache off stops lookups and inserts.
        engine.set_cache_enabled(false);
        let fourth = engine.execute(&prepared).unwrap();
        assert!(!fourth.evidence().cache_hit);
    }

    #[test]
    fn mapping_budget_refuses_hopeless_escalations_with_certified_bounds() {
        let db = teaching(); // kernel count > 1 (mystery is unconstrained)
        let budgeted = Engine::builder(db.clone()).mapping_budget(1).build();
        let unbudgeted = Engine::new(db);
        // A query with no completeness certificate: Auto would escalate.
        let text = "(x) . !TEACHES(socrates, x)";
        let bounded = budgeted.query(text).unwrap();
        assert_eq!(bounded.evidence().certificate, Certificate::BoundedPair);
        assert_eq!(bounded.evidence().mappings_evaluated, 0);
        assert!(!bounded.is_exact());
        let upper = bounded.upper_bound().expect("bounded pair carries bounds");
        let truth = unbudgeted.query(text).unwrap();
        assert!(
            bounded.tuples().is_subset_of(truth.tuples()),
            "lower bound unsound"
        );
        assert!(
            truth.tuples().is_subset_of(upper),
            "upper bound not a superset"
        );
        // Within budget, Auto still escalates normally.
        let generous = Engine::builder(budgeted.db().clone())
            .mapping_budget(1_000_000)
            .build();
        let exact = generous.query(text).unwrap();
        assert_eq!(exact.evidence().certificate, Certificate::ExactTheorem1);
        assert_eq!(exact.tuples(), truth.tuples());
        // Certified paths are untouched by the budget.
        let positive = budgeted.query("(x) . TEACHES(socrates, x)").unwrap();
        assert!(positive.is_exact());
        // Non-bounded answers carry no upper bound.
        assert!(positive.upper_bound().is_none());
    }

    #[test]
    fn evidence_summary_is_printable() {
        let engine = Engine::new(teaching());
        let ans = engine.query("TEACHES(socrates, plato)").unwrap();
        let line = ans.evidence().summary();
        assert!(line.contains("auto"), "{line}");
        assert!(line.contains("Theorem 13"), "{line}");
    }
}
