//! One engine to query them all: the unified session API over every
//! evaluation regime of Vardi's *Querying Logical Databases*.
//!
//! The paper's point is that a single logical database admits several
//! evaluation regimes with different cost/guarantee trade-offs:
//!
//! * **Theorem 1** — exact certain answers by enumerating respecting
//!   mappings (exponential; co-NP-hard data complexity by Theorem 5);
//! * **Corollary 2** — when the database is fully specified, one
//!   evaluation over `Ph₁(LB)` is exact;
//! * **§5 (Theorems 11–14)** — a polynomial approximation on a standard
//!   relational system: always sound, complete on fully specified
//!   databases (Thm 12) and positive queries (Thm 13);
//! * the **possible-answer** dual — tuples true in some model.
//!
//! [`Engine`] packages all of them behind one session API:
//!
//! * [`Engine::builder`] configures semantics ([`Semantics`]), the §5
//!   execution backend, `α_P` realization, `NE` storage, and the
//!   Theorem 1 mapping-enumeration strategy;
//! * [`Engine::prepare`] turns a query into a [`PreparedQuery`] —
//!   parse/validate/rewrite/compile once, execute many;
//! * execution returns [`Answers`]: the tuples plus an [`Evidence`]
//!   report saying which [`Regime`] ran, how long it took, and — the
//!   crucial part — a [`Certificate`] stating how the tuples relate to
//!   the true certain answers and which theorem proves it;
//! * every failure is a single [`EngineError`].
//!
//! Under [`Semantics::Auto`] the engine is a *certifying dispatcher*: it
//! runs the cheapest path the paper licenses as exact and escalates to
//! the exponential Theorem 1 enumeration only when no completeness
//! theorem applies — so callers get polynomial evaluation whenever the
//! theory permits it, without guessing when the cheap answer is the real
//! one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod evidence;
mod prepared;
mod session;

pub use error::EngineError;
pub use evidence::{Answers, Certificate, Evidence, Regime, Semantics};
pub use prepared::PreparedQuery;
pub use session::{Engine, EngineBuilder, NeStoreMode};

// The configuration vocabulary callers need alongside the builder.
pub use qld_approx::{AlphaMode, Backend, CompletenessTheorem};
pub use qld_core::exact::MappingStrategy;
pub use qld_core::mappings::ParallelConfig;

#[cfg(test)]
mod tests {
    use super::*;
    use qld_core::{certain_answers, possible_answers, CwDatabase};
    use qld_logic::Vocabulary;

    /// socrates/plato/aristotle pairwise distinct; `mystery` unknown.
    fn teaching() -> CwDatabase {
        let mut voc = Vocabulary::new();
        let ids = voc
            .add_consts(["socrates", "plato", "aristotle", "mystery"])
            .unwrap();
        let teaches = voc.add_pred("TEACHES", 2).unwrap();
        CwDatabase::builder(voc)
            .fact(teaches, &[ids[0], ids[1]])
            .pairwise_unique(&ids[..3])
            .build()
            .unwrap()
    }

    fn fully_specified() -> CwDatabase {
        let mut voc = Vocabulary::new();
        let ids = voc.add_consts(["a", "b", "c"]).unwrap();
        let r = voc.add_pred("R", 2).unwrap();
        CwDatabase::builder(voc)
            .fact(r, &[ids[0], ids[1]])
            .fact(r, &[ids[1], ids[2]])
            .fully_specified()
            .build()
            .unwrap()
    }

    #[test]
    fn auto_routes_positive_queries_through_the_approximation() {
        let engine = Engine::new(teaching());
        let ans = engine.query("(x) . TEACHES(socrates, x)").unwrap();
        assert_eq!(ans.evidence().regime, Regime::Approximation);
        assert_eq!(
            ans.evidence().certificate,
            Certificate::ExactCompleteness(CompletenessTheorem::PositiveQuery)
        );
        assert!(ans.is_exact());
        assert_eq!(engine.answer_names(&ans), vec![vec!["plato"]]);
    }

    #[test]
    fn auto_uses_corollary2_on_fully_specified_databases() {
        let engine = Engine::new(fully_specified());
        let ans = engine.query("(x) . !R(x, x)").unwrap();
        assert_eq!(ans.evidence().regime, Regime::Corollary2);
        assert_eq!(ans.evidence().certificate, Certificate::ExactCorollary2);
        assert_eq!(
            ans.into_tuples(),
            certain_answers(
                engine.db(),
                &engine.prepare_text("(x) . !R(x, x)").unwrap().query
            )
            .unwrap()
        );
    }

    #[test]
    fn auto_escalates_to_theorem1_only_without_a_certificate() {
        let engine = Engine::new(teaching());
        let ans = engine.query("(x) . !TEACHES(socrates, x)").unwrap();
        assert_eq!(ans.evidence().regime, Regime::Theorem1);
        assert_eq!(ans.evidence().certificate, Certificate::ExactTheorem1);
        assert!(ans.evidence().mappings_evaluated > 0);
    }

    #[test]
    fn explicit_semantics_run_their_regime() {
        let db = teaching();
        let mut engine = Engine::new(db.clone());
        let prepared = engine.prepare_text("(x) . TEACHES(socrates, x)").unwrap();

        let exact = engine.execute_as(&prepared, Semantics::Exact).unwrap();
        assert_eq!(exact.evidence().regime, Regime::Theorem1);
        assert_eq!(
            *exact.tuples(),
            certain_answers(&db, prepared.query()).unwrap()
        );

        let approx = engine.execute_as(&prepared, Semantics::Approx).unwrap();
        assert_eq!(approx.evidence().regime, Regime::Approximation);

        let possible = engine.execute_as(&prepared, Semantics::Possible).unwrap();
        assert_eq!(
            possible.evidence().certificate,
            Certificate::PossibleUpperBound
        );
        assert_eq!(
            *possible.tuples(),
            possible_answers(&db, prepared.query()).unwrap()
        );
        assert!(exact.tuples().is_subset_of(possible.tuples()));

        engine.set_semantics(Semantics::Possible);
        assert_eq!(engine.semantics(), Semantics::Possible);
        let via_default = engine.execute(&prepared).unwrap();
        assert_eq!(via_default.tuples(), possible.tuples());
    }

    #[test]
    fn approx_semantics_reports_sound_lower_bound_without_certificate() {
        // The known incompleteness example: P(u) ∨ u ≠ a is certain but
        // the approximation misses it — the certificate must say "lower
        // bound", not "exact".
        let mut voc = Vocabulary::new();
        let ids = voc.add_consts(["a", "b", "u"]).unwrap();
        let p = voc.add_pred("P", 1).unwrap();
        let db = CwDatabase::builder(voc)
            .fact(p, &[ids[0]])
            .unique(ids[0], ids[1])
            .build()
            .unwrap();
        let engine = Engine::builder(db).semantics(Semantics::Approx).build();
        let ans = engine.query("P(u) | u != a").unwrap();
        assert_eq!(ans.evidence().certificate, Certificate::SoundLowerBound);
        assert!(!ans.is_exact());
        assert!(ans.is_empty(), "the approximation misses the tautology");
        // Auto on the same query escalates and finds it.
        let auto = engine
            .execute_as(
                &engine.prepare_text("P(u) | u != a").unwrap(),
                Semantics::Auto,
            )
            .unwrap();
        assert!(auto.is_exact());
        assert!(auto.holds());
    }

    #[test]
    fn algebra_backend_and_virtual_ne_agree_with_defaults() {
        let db = teaching();
        let reference = Engine::new(db.clone());
        let configured = Engine::builder(db)
            .backend(Backend::Algebra(qld_algebra::ExecOptions::default()))
            .alpha_mode(AlphaMode::Lemma10)
            .ne_store(NeStoreMode::Virtual)
            .semantics(Semantics::Approx)
            .build();
        for text in [
            "(x) . TEACHES(socrates, x)",
            "(x) . !TEACHES(socrates, x)",
            "(x) . x != plato",
            "exists x. TEACHES(x, plato)",
        ] {
            let a = reference
                .execute_as(&reference.prepare_text(text).unwrap(), Semantics::Approx)
                .unwrap();
            let b = configured.query(text).unwrap();
            assert_eq!(a.tuples(), b.tuples(), "config mismatch on {text}");
        }
    }

    #[test]
    fn second_order_query_on_algebra_backend_is_a_compile_error() {
        let engine = Engine::builder(teaching())
            .backend(Backend::Algebra(qld_algebra::ExecOptions::default()))
            .semantics(Semantics::Approx)
            .build();
        let prepared = engine
            .prepare_text("exists2 ?S:1. ?S(plato) & !?S(aristotle)")
            .unwrap();
        assert!(prepared.plan().is_none());
        assert!(matches!(
            engine.execute(&prepared),
            Err(EngineError::Compile(_))
        ));
        // …but Auto still answers it (escalation runs Theorem 1).
        assert!(engine.execute_as(&prepared, Semantics::Auto).is_ok());
    }

    #[test]
    fn prepared_queries_are_engine_bound() {
        let a = Engine::new(teaching());
        let b = Engine::new(teaching());
        let prepared = a.prepare_text("(x) . TEACHES(socrates, x)").unwrap();
        assert_eq!(
            b.execute(&prepared).unwrap_err(),
            EngineError::PreparedElsewhere
        );
    }

    #[test]
    fn invalid_queries_are_one_error_type() {
        let engine = Engine::new(teaching());
        assert!(matches!(engine.query("NOPE("), Err(EngineError::Logic(_))));
        assert!(matches!(
            engine.query("(x) . UNKNOWN_PRED(x)"),
            Err(EngineError::Logic(_))
        ));
    }

    #[test]
    fn mapping_strategy_is_respected() {
        let db = teaching();
        let kern = Engine::builder(db.clone())
            .semantics(Semantics::Exact)
            .mapping_strategy(MappingStrategy::Kernels)
            .build();
        let raw = Engine::builder(db)
            .semantics(Semantics::Exact)
            .mapping_strategy(MappingStrategy::RawMappings)
            .build();
        let q = "forall x. TEACHES(socrates, x) -> x != aristotle";
        let a = kern.query(q).unwrap();
        let b = raw.query(q).unwrap();
        assert_eq!(a.tuples(), b.tuples());
        // Raw enumeration visits at least as many mappings as the kernel
        // canonicalization.
        assert!(b.evidence().mappings_evaluated >= a.evidence().mappings_evaluated);
    }

    #[test]
    fn parallelism_is_bit_identical_and_reports_workers() {
        let db = teaching();
        let sequential = Engine::builder(db.clone())
            .semantics(Semantics::Exact)
            .parallelism(1)
            .build();
        for threads in [2usize, 4, 8] {
            let parallel = Engine::builder(db.clone())
                .semantics(Semantics::Exact)
                .parallelism(threads)
                .build();
            assert_eq!(parallel.parallelism(), threads);
            for text in [
                "(x) . !TEACHES(socrates, x)",
                "(x, y) . TEACHES(x, y)",
                "forall x. TEACHES(socrates, x) -> x != aristotle",
            ] {
                let a = sequential.query(text).unwrap();
                let b = parallel.query(text).unwrap();
                assert_eq!(a.tuples(), b.tuples(), "{text} at {threads} threads");
                assert_eq!(a.evidence().workers_used, 1);
                assert!(b.evidence().workers_used >= 1);
                // Possible answers run through the same worker pool.
                let pa = sequential
                    .execute_as(&sequential.prepare_text(text).unwrap(), Semantics::Possible)
                    .unwrap();
                let pb = parallel
                    .execute_as(&parallel.prepare_text(text).unwrap(), Semantics::Possible)
                    .unwrap();
                assert_eq!(pa.tuples(), pb.tuples(), "possible {text}");
            }
        }
        // The knob is also mutable on a live session.
        let mut engine = Engine::new(teaching());
        engine.set_parallelism(2);
        assert_eq!(engine.parallelism(), 2);
        let ans = engine.query("(x) . !TEACHES(socrates, x)").unwrap();
        assert!(ans.evidence().workers_used >= 1);
    }

    #[test]
    fn evidence_summary_is_printable() {
        let engine = Engine::new(teaching());
        let ans = engine.query("TEACHES(socrates, plato)").unwrap();
        let line = ans.evidence().summary();
        assert!(line.contains("auto"), "{line}");
        assert!(line.contains("Theorem 13"), "{line}");
    }
}
