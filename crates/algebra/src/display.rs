//! Pretty-printing of plans as indented operator trees (`EXPLAIN`-style).

use crate::plan::{Cond, Plan};
use qld_logic::Vocabulary;
use std::fmt;

/// Wrapper rendering a [`Plan`] with names from a vocabulary.
pub struct PlanDisplay<'a> {
    voc: &'a Vocabulary,
    plan: &'a Plan,
}

/// Renders `plan` as an indented tree.
pub fn display_plan<'a>(voc: &'a Vocabulary, plan: &'a Plan) -> PlanDisplay<'a> {
    PlanDisplay { voc, plan }
}

fn write_cond(f: &mut fmt::Formatter<'_>, voc: &Vocabulary, c: &Cond) -> fmt::Result {
    match c {
        Cond::EqCol(i, j) => write!(f, "#{i} = #{j}"),
        Cond::NeCol(i, j) => write!(f, "#{i} != #{j}"),
        Cond::EqConst(i, k) => write!(f, "#{i} = {}", voc.const_name(*k)),
        Cond::NeConst(i, k) => write!(f, "#{i} != {}", voc.const_name(*k)),
    }
}

fn write_plan(
    f: &mut fmt::Formatter<'_>,
    voc: &Vocabulary,
    plan: &Plan,
    indent: usize,
) -> fmt::Result {
    let pad = "  ".repeat(indent);
    match plan {
        Plan::Values { arity, tuples } => {
            writeln!(f, "{pad}Values/{arity} [{} tuples]", tuples.len())
        }
        Plan::Dom => writeln!(f, "{pad}Dom"),
        Plan::ConstVal(c) => writeln!(f, "{pad}ConstVal({})", voc.const_name(*c)),
        Plan::Scan(p) => writeln!(f, "{pad}Scan({})", voc.pred_name(*p)),
        Plan::Select { input, conds } => {
            write!(f, "{pad}Select[")?;
            for (i, c) in conds.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                write_cond(f, voc, c)?;
            }
            writeln!(f, "]")?;
            write_plan(f, voc, input, indent + 1)
        }
        Plan::Project { input, cols } => {
            let cols: Vec<String> = cols.iter().map(|c| format!("#{c}")).collect();
            writeln!(f, "{pad}Project[{}]", cols.join(", "))?;
            write_plan(f, voc, input, indent + 1)
        }
        Plan::Product(l, r) => {
            writeln!(f, "{pad}Product")?;
            write_plan(f, voc, l, indent + 1)?;
            write_plan(f, voc, r, indent + 1)
        }
        Plan::Join { left, right, keys } => {
            let keys: Vec<String> = keys.iter().map(|(l, r)| format!("L#{l} = R#{r}")).collect();
            writeln!(f, "{pad}Join[{}]", keys.join(" & "))?;
            write_plan(f, voc, left, indent + 1)?;
            write_plan(f, voc, right, indent + 1)
        }
        Plan::Union(l, r) => {
            writeln!(f, "{pad}Union")?;
            write_plan(f, voc, l, indent + 1)?;
            write_plan(f, voc, r, indent + 1)
        }
        Plan::Difference(l, r) => {
            writeln!(f, "{pad}Difference")?;
            write_plan(f, voc, l, indent + 1)?;
            write_plan(f, voc, r, indent + 1)
        }
    }
}

impl fmt::Display for PlanDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_plan(f, self.voc, self.plan, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_query;
    use crate::opt::optimize;
    use qld_logic::parser::parse_query;

    #[test]
    fn renders_operator_tree() {
        let mut voc = Vocabulary::new();
        voc.add_const("a").unwrap();
        voc.add_pred("R", 2).unwrap();
        voc.add_pred("M", 1).unwrap();
        let q = parse_query(&voc, "(x) . exists y. R(x, y) & M(y)").unwrap();
        let plan = optimize(&voc, compile_query(&voc, &q).unwrap());
        let rendered = display_plan(&voc, &plan).to_string();
        assert!(rendered.contains("Scan(R)"), "{rendered}");
        assert!(rendered.contains("Scan(M)"), "{rendered}");
        assert!(rendered.contains("Join["), "{rendered}");
        // Indentation shows tree depth.
        assert!(
            rendered.lines().any(|l| l.starts_with("    ")),
            "{rendered}"
        );
    }

    #[test]
    fn renders_conditions_with_names() {
        let mut voc = Vocabulary::new();
        let a = voc.add_const("alpha").unwrap();
        let r = voc.add_pred("R", 2).unwrap();
        let plan = Plan::select(Plan::Scan(r), vec![Cond::EqConst(0, a), Cond::NeCol(0, 1)]);
        let rendered = display_plan(&voc, &plan).to_string();
        assert!(rendered.contains("#0 = alpha & #0 != #1"), "{rendered}");
    }
}
