//! A conservative plan optimizer.
//!
//! The compiler's output is deliberately naive (selections above scans,
//! products instead of joins when conditions arrive late, towers of
//! projections); this pass applies the standard algebraic rewrites:
//!
//! * selection fusion: `σ_c1(σ_c2(P)) → σ_{c1∧c2}(P)`;
//! * projection fusion: `π_a(π_b(P)) → π_{b∘a}(P)`;
//! * identity-projection elimination;
//! * selection-over-product to equi-join conversion, with one-sided
//!   conditions pushed below the product;
//! * selection pushdown through joins (and boundary equalities promoted to
//!   join keys);
//! * unit/empty algebraic simplifications.
//!
//! Every rewrite is semantics-preserving; the compile-tests battery runs
//! optimized and unoptimized plans side by side.

use crate::plan::{Cond, Plan};
use qld_logic::Vocabulary;

/// Applies the rewrites bottom-up until a fixpoint (bounded passes).
pub fn optimize(voc: &Vocabulary, plan: Plan) -> Plan {
    let mut current = plan;
    for _ in 0..16 {
        let (next, changed) = pass(voc, current);
        current = next;
        if !changed {
            break;
        }
    }
    current
}

fn is_unit(p: &Plan) -> bool {
    matches!(p, Plan::Values { arity: 0, tuples } if tuples.len() == 1)
}

fn is_empty_values(p: &Plan) -> bool {
    matches!(p, Plan::Values { tuples, .. } if tuples.is_empty())
}

/// One bottom-up rewriting pass. Returns the plan and whether anything
/// changed.
fn pass(voc: &Vocabulary, plan: Plan) -> (Plan, bool) {
    match plan {
        Plan::Values { .. } | Plan::Dom | Plan::ConstVal(_) | Plan::Scan(_) => (plan, false),
        Plan::Select { input, conds } => {
            let (input, mut changed) = pass(voc, *input);
            let plan = match input {
                // σ_c1(σ_c2(P)) → σ_{c2∧c1}(P)
                Plan::Select {
                    input: inner,
                    conds: mut inner_conds,
                } => {
                    changed = true;
                    inner_conds.extend(conds);
                    Plan::Select {
                        input: inner,
                        conds: inner_conds,
                    }
                }
                // σ over a product: split conditions by side, promote
                // boundary equalities to join keys.
                Plan::Product(left, right) => {
                    let la = left.arity(voc);
                    let mut keys = Vec::new();
                    let mut lconds = Vec::new();
                    let mut rconds = Vec::new();
                    let mut above = Vec::new();
                    for c in conds {
                        route_cond(c, la, &mut keys, &mut lconds, &mut rconds, &mut above);
                    }
                    if keys.is_empty() && lconds.is_empty() && rconds.is_empty() {
                        Plan::select(Plan::Product(left, right), above)
                    } else {
                        changed = true;
                        let join = Plan::Join {
                            left: Box::new(Plan::select(*left, lconds)),
                            right: Box::new(Plan::select(*right, rconds)),
                            keys,
                        };
                        Plan::select(join, above)
                    }
                }
                // σ over a join: same routing, extending the key list.
                Plan::Join { left, right, keys } => {
                    let la = left.arity(voc);
                    let mut keys = keys;
                    let mut lconds = Vec::new();
                    let mut rconds = Vec::new();
                    let mut above = Vec::new();
                    let before = (keys.len(), conds.len());
                    for c in conds {
                        route_cond(c, la, &mut keys, &mut lconds, &mut rconds, &mut above);
                    }
                    if keys.len() != before.0 || above.len() != before.1 {
                        changed = true;
                    }
                    let join = Plan::Join {
                        left: Box::new(Plan::select(*left, lconds)),
                        right: Box::new(Plan::select(*right, rconds)),
                        keys,
                    };
                    Plan::select(join, above)
                }
                other if is_empty_values(&other) => {
                    changed = true;
                    other
                }
                other => Plan::select(other, conds),
            };
            (plan, changed)
        }
        Plan::Project { input, cols } => {
            let (input, mut changed) = pass(voc, *input);
            // π identity
            if cols.len() == input.arity(voc) && cols.iter().enumerate().all(|(i, &c)| i == c) {
                return (input, true);
            }
            let plan = match input {
                Plan::Project {
                    input: inner,
                    cols: inner_cols,
                } => {
                    changed = true;
                    Plan::Project {
                        input: inner,
                        cols: cols.iter().map(|&i| inner_cols[i]).collect(),
                    }
                }
                other => Plan::project(other, cols),
            };
            (plan, changed)
        }
        Plan::Product(l, r) => {
            let (l, cl) = pass(voc, *l);
            let (r, cr) = pass(voc, *r);
            if is_unit(&l) {
                return (r, true);
            }
            if is_unit(&r) {
                return (l, true);
            }
            if is_empty_values(&l) || is_empty_values(&r) {
                let arity = l.arity(voc) + r.arity(voc);
                return (Plan::empty(arity), true);
            }
            (Plan::Product(Box::new(l), Box::new(r)), cl || cr)
        }
        Plan::Join { left, right, keys } => {
            let (l, cl) = pass(voc, *left);
            let (r, cr) = pass(voc, *right);
            if is_empty_values(&l) || is_empty_values(&r) {
                let arity = l.arity(voc) + r.arity(voc);
                return (Plan::empty(arity), true);
            }
            (
                Plan::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    keys,
                },
                cl || cr,
            )
        }
        Plan::Union(l, r) => {
            let (l, cl) = pass(voc, *l);
            let (r, cr) = pass(voc, *r);
            if is_empty_values(&l) {
                return (r, true);
            }
            if is_empty_values(&r) {
                return (l, true);
            }
            (Plan::Union(Box::new(l), Box::new(r)), cl || cr)
        }
        Plan::Difference(l, r) => {
            let (l, cl) = pass(voc, *l);
            let (r, cr) = pass(voc, *r);
            if is_empty_values(&l) {
                let arity = l.arity(voc);
                return (Plan::empty(arity), true);
            }
            if is_empty_values(&r) {
                return (l, true);
            }
            (Plan::Difference(Box::new(l), Box::new(r)), cl || cr)
        }
    }
}

/// Routes a selection condition sitting above a two-sided operator with
/// left arity `la`: into join keys, the left side, the right side, or kept
/// above.
fn route_cond(
    c: Cond,
    la: usize,
    keys: &mut Vec<(usize, usize)>,
    lconds: &mut Vec<Cond>,
    rconds: &mut Vec<Cond>,
    above: &mut Vec<Cond>,
) {
    match c {
        Cond::EqCol(i, j) => {
            let (lo, hi) = (i.min(j), i.max(j));
            if lo < la && hi >= la {
                keys.push((lo, hi - la));
            } else if hi < la {
                lconds.push(c);
            } else {
                rconds.push(Cond::EqCol(lo - la, hi - la));
            }
        }
        Cond::NeCol(i, j) => {
            let (lo, hi) = (i.min(j), i.max(j));
            if lo < la && hi >= la {
                above.push(c);
            } else if hi < la {
                lconds.push(c);
            } else {
                rconds.push(Cond::NeCol(lo - la, hi - la));
            }
        }
        Cond::EqConst(i, k) => {
            if i < la {
                lconds.push(c);
            } else {
                rconds.push(Cond::EqConst(i - la, k));
            }
        }
        Cond::NeConst(i, k) => {
            if i < la {
                lconds.push(c);
            } else {
                rconds.push(Cond::NeConst(i - la, k));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecOptions};
    use qld_physical::PhysicalDb;

    fn setup() -> (Vocabulary, PhysicalDb) {
        let mut voc = Vocabulary::new();
        let a = voc.add_const("a").unwrap();
        let r = voc.add_pred("R", 2).unwrap();
        let s = voc.add_pred("S", 2).unwrap();
        let db = PhysicalDb::builder(&voc)
            .domain(0..5)
            .constant(a, 0)
            .relation_from_tuples(r, vec![vec![0, 1], vec![1, 2], vec![2, 3]])
            .relation_from_tuples(s, vec![vec![1, 4], vec![2, 0]])
            .build()
            .unwrap();
        (voc, db)
    }

    #[test]
    fn select_over_product_becomes_join() {
        let (voc, db) = setup();
        let r = voc.pred_id("R").unwrap();
        let s = voc.pred_id("S").unwrap();
        let naive = Plan::select(
            Plan::Product(Box::new(Plan::Scan(r)), Box::new(Plan::Scan(s))),
            vec![Cond::EqCol(1, 2)],
        );
        let optimized = optimize(&voc, naive.clone());
        assert!(
            matches!(optimized, Plan::Join { .. }),
            "expected join, got {optimized:?}"
        );
        assert_eq!(
            execute(&db, &naive, ExecOptions::default()),
            execute(&db, &optimized, ExecOptions::default())
        );
    }

    #[test]
    fn selection_fusion() {
        let (voc, _) = setup();
        let r = voc.pred_id("R").unwrap();
        let a = voc.const_id("a").unwrap();
        let plan = Plan::select(
            Plan::select(Plan::Scan(r), vec![Cond::EqConst(0, a)]),
            vec![Cond::NeCol(0, 1)],
        );
        let optimized = optimize(&voc, plan);
        match optimized {
            Plan::Select { conds, .. } => assert_eq!(conds.len(), 2),
            other => panic!("expected fused select, got {other:?}"),
        }
    }

    #[test]
    fn projection_fusion_and_identity() {
        let (voc, _) = setup();
        let r = voc.pred_id("R").unwrap();
        let plan = Plan::project(Plan::project(Plan::Scan(r), vec![1, 0]), vec![1, 0]);
        // π_{1,0}(π_{1,0}(R)) = identity projection = R.
        assert_eq!(optimize(&voc, plan), Plan::Scan(r));
    }

    #[test]
    fn unit_product_elimination() {
        let (voc, _) = setup();
        let r = voc.pred_id("R").unwrap();
        let plan = Plan::Product(Box::new(Plan::unit()), Box::new(Plan::Scan(r)));
        assert_eq!(optimize(&voc, plan), Plan::Scan(r));
    }

    #[test]
    fn empty_propagation() {
        let (voc, _) = setup();
        let r = voc.pred_id("R").unwrap();
        let plan = Plan::Join {
            left: Box::new(Plan::empty(2)),
            right: Box::new(Plan::Scan(r)),
            keys: vec![(0, 0)],
        };
        assert_eq!(optimize(&voc, plan), Plan::empty(4));
        let plan = Plan::Union(Box::new(Plan::empty(2)), Box::new(Plan::Scan(r)));
        assert_eq!(optimize(&voc, plan), Plan::Scan(r));
        let plan = Plan::Difference(Box::new(Plan::Scan(r)), Box::new(Plan::empty(2)));
        assert_eq!(optimize(&voc, plan), Plan::Scan(r));
    }

    #[test]
    fn one_sided_conditions_pushed_down() {
        let (voc, db) = setup();
        let r = voc.pred_id("R").unwrap();
        let s = voc.pred_id("S").unwrap();
        let a = voc.const_id("a").unwrap();
        let plan = Plan::select(
            Plan::Product(Box::new(Plan::Scan(r)), Box::new(Plan::Scan(s))),
            vec![Cond::EqConst(0, a), Cond::EqConst(3, a), Cond::EqCol(1, 2)],
        );
        let optimized = optimize(&voc, plan.clone());
        // The product became a join with selections pushed to its inputs.
        fn has_product(p: &Plan) -> bool {
            match p {
                Plan::Product(..) => true,
                Plan::Select { input, .. } | Plan::Project { input, .. } => has_product(input),
                Plan::Join { left, right, .. }
                | Plan::Union(left, right)
                | Plan::Difference(left, right) => has_product(left) || has_product(right),
                _ => false,
            }
        }
        assert!(!has_product(&optimized));
        assert_eq!(
            execute(&db, &plan, ExecOptions::default()),
            execute(&db, &optimized, ExecOptions::default())
        );
    }
}
