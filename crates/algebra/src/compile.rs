//! The classic first-order → relational-algebra translation (Codd's
//! theorem, constructive direction), over the explicit finite domain.
//!
//! Because every [`qld_physical::PhysicalDb`] carries its domain, the
//! translation needs no range-restriction analysis: quantifiers and
//! negation compile against the `Dom` relation and the result provably
//! agrees with the naive Tarskian evaluator on *every* first-order query
//! (property-tested in this crate and in the workspace integration tests).
//!
//! The §5 pipeline uses this to run approximate logical-database queries
//! on the relational engine: `Q ↦ Q̂ ↦ plan over Ph₂(LB)`.

use crate::exec::{execute, ExecOptions};
use crate::opt::optimize;
use crate::plan::{Cond, Plan};
use crate::stats::{estimate_plan, order_conjuncts, CardinalityEstimator};
use qld_logic::{Formula, LogicError, Query, Term, Var, Vocabulary};
use qld_physical::{PhysicalDb, Relation};
use std::fmt;

/// Errors from query compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The algebra engine only handles first-order queries.
    SecondOrder,
    /// The query is ill-formed for the vocabulary.
    Logic(LogicError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::SecondOrder => {
                write!(
                    f,
                    "second-order queries cannot be compiled to relational algebra"
                )
            }
            CompileError::Logic(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LogicError> for CompileError {
    fn from(e: LogicError) -> Self {
        CompileError::Logic(e)
    }
}

/// Compiles a first-order query into a plan whose output columns are the
/// query's head variables, in head order.
pub fn compile_query(voc: &Vocabulary, query: &Query) -> Result<Plan, CompileError> {
    compile_inner(voc, None, query)
}

/// Like [`compile_query`], but orders conjunctions greedily using the
/// estimator (smallest connected input first) — see [`crate::stats`].
pub fn compile_query_ordered(
    voc: &Vocabulary,
    est: &dyn CardinalityEstimator,
    query: &Query,
) -> Result<Plan, CompileError> {
    compile_inner(voc, Some(est), query)
}

fn compile_inner(
    voc: &Vocabulary,
    est: Option<&dyn CardinalityEstimator>,
    query: &Query,
) -> Result<Plan, CompileError> {
    query.check(voc)?;
    let (mut plan, mut cols) = translate(est, query.body())?;
    // Pad head variables that the body never mentions (they range over the
    // whole domain, matching the naive evaluator).
    for hv in query.head() {
        if !cols.contains(hv) {
            plan = Plan::Product(Box::new(plan), Box::new(Plan::Dom));
            cols.push(*hv);
        }
    }
    let out_cols: Vec<usize> = query
        .head()
        .iter()
        .map(|hv| {
            cols.iter()
                .position(|c| c == hv)
                .expect("head variables are free in the body or padded")
        })
        .collect();
    Ok(Plan::project(plan, out_cols))
}

/// Compiles (with optimization) and executes in one step.
pub fn eval_via_algebra(
    voc: &Vocabulary,
    db: &PhysicalDb,
    query: &Query,
    opts: ExecOptions,
) -> Result<Relation, CompileError> {
    let plan = optimize(voc, compile_query(voc, query)?);
    Ok(execute(db, &plan, opts))
}

fn dom_pow(k: usize) -> Plan {
    let mut plan = Plan::unit();
    for _ in 0..k {
        plan = Plan::Product(Box::new(plan), Box::new(Plan::Dom));
    }
    plan
}

/// Translates a formula into a plan over its free variables; returns the
/// plan and the variable each output column carries.
fn translate(
    est: Option<&dyn CardinalityEstimator>,
    f: &Formula,
) -> Result<(Plan, Vec<Var>), CompileError> {
    match f {
        Formula::True => Ok((Plan::unit(), Vec::new())),
        Formula::False => Ok((Plan::empty(0), Vec::new())),
        Formula::Atom(p, ts) => {
            let mut conds: Vec<Cond> = Vec::new();
            let mut first: Vec<(Var, usize)> = Vec::new();
            for (i, t) in ts.iter().enumerate() {
                match t {
                    Term::Const(c) => conds.push(Cond::EqConst(i, *c)),
                    Term::Var(v) => match first.iter().find(|(w, _)| w == v) {
                        Some((_, j)) => conds.push(Cond::EqCol(*j, i)),
                        None => first.push((*v, i)),
                    },
                }
            }
            let plan = Plan::select(Plan::Scan(*p), conds);
            let cols: Vec<usize> = first.iter().map(|(_, i)| *i).collect();
            let vars: Vec<Var> = first.iter().map(|(v, _)| *v).collect();
            Ok((Plan::project(plan, cols), vars))
        }
        Formula::SoAtom(..) | Formula::SoExists(..) | Formula::SoForall(..) => {
            Err(CompileError::SecondOrder)
        }
        Formula::Eq(a, b) => match (a, b) {
            (Term::Var(x), Term::Var(y)) if x == y => Ok((Plan::Dom, vec![*x])),
            (Term::Var(x), Term::Var(y)) => {
                let plan = Plan::select(
                    Plan::Product(Box::new(Plan::Dom), Box::new(Plan::Dom)),
                    vec![Cond::EqCol(0, 1)],
                );
                Ok((plan, vec![*x, *y]))
            }
            (Term::Var(x), Term::Const(c)) | (Term::Const(c), Term::Var(x)) => {
                Ok((Plan::ConstVal(*c), vec![*x]))
            }
            (Term::Const(c1), Term::Const(c2)) => {
                // Never fold by symbol identity: in image databases two
                // symbols may denote one element.
                let plan = Plan::project(
                    Plan::select(
                        Plan::Product(Box::new(Plan::ConstVal(*c1)), Box::new(Plan::ConstVal(*c2))),
                        vec![Cond::EqCol(0, 1)],
                    ),
                    vec![],
                );
                Ok((plan, Vec::new()))
            }
        },
        Formula::Not(g) => {
            let (pg, cols) = translate(est, g)?;
            Ok((
                Plan::Difference(Box::new(dom_pow(cols.len())), Box::new(pg)),
                cols,
            ))
        }
        Formula::And(fs) => {
            let mut parts: Vec<(Plan, Vec<Var>)> = fs
                .iter()
                .map(|g| translate(est, g))
                .collect::<Result<_, _>>()?;
            if let Some(est) = est {
                // Greedy join ordering: smallest connected conjunct first.
                let items: Vec<(f64, Vec<Var>)> = parts
                    .iter()
                    .map(|(p, vars)| (estimate_plan(est, p), vars.clone()))
                    .collect();
                let order = order_conjuncts(&items);
                let mut reordered: Vec<Option<(Plan, Vec<Var>)>> =
                    parts.into_iter().map(Some).collect();
                parts = order
                    .into_iter()
                    .map(|i| reordered[i].take().expect("each index used once"))
                    .collect();
            }
            let mut acc: Option<(Plan, Vec<Var>)> = None;
            for next in parts {
                acc = Some(match acc {
                    None => next,
                    Some(prev) => join_on_shared(prev, next),
                });
            }
            Ok(acc.unwrap_or((Plan::unit(), Vec::new())))
        }
        Formula::Or(fs) => {
            let translated: Vec<(Plan, Vec<Var>)> = fs
                .iter()
                .map(|g| translate(est, g))
                .collect::<Result<_, _>>()?;
            // Target column set: union of free variables, sorted by index.
            let mut union_vars: Vec<Var> = translated
                .iter()
                .flat_map(|(_, cols)| cols.iter().copied())
                .collect();
            union_vars.sort_unstable();
            union_vars.dedup();
            let mut acc: Option<Plan> = None;
            for (mut plan, mut cols) in translated {
                for v in &union_vars {
                    if !cols.contains(v) {
                        plan = Plan::Product(Box::new(plan), Box::new(Plan::Dom));
                        cols.push(*v);
                    }
                }
                let reorder: Vec<usize> = union_vars
                    .iter()
                    .map(|v| cols.iter().position(|c| c == v).expect("padded above"))
                    .collect();
                let aligned = Plan::project(plan, reorder);
                acc = Some(match acc {
                    None => aligned,
                    Some(prev) => Plan::Union(Box::new(prev), Box::new(aligned)),
                });
            }
            Ok((acc.unwrap_or(Plan::empty(0)), union_vars))
        }
        Formula::Implies(p, q) => translate(
            est,
            &Formula::or(vec![Formula::not((**p).clone()), (**q).clone()]),
        ),
        Formula::Iff(p, q) => translate(
            est,
            &Formula::or(vec![
                Formula::and(vec![(**p).clone(), (**q).clone()]),
                Formula::and(vec![
                    Formula::not((**p).clone()),
                    Formula::not((**q).clone()),
                ]),
            ]),
        ),
        Formula::Exists(v, g) => {
            let (pg, mut cols) = translate(est, g)?;
            match cols.iter().position(|c| c == v) {
                // v not free in g: ∃v g ≡ g over a nonempty domain (which
                // §2.1 guarantees).
                None => Ok((pg, cols)),
                Some(pos) => {
                    cols.remove(pos);
                    let keep: Vec<usize> = (0..=cols.len()).filter(|&i| i != pos).collect();
                    Ok((Plan::project(pg, keep), cols))
                }
            }
        }
        Formula::Forall(v, g) => translate(
            est,
            &Formula::not(Formula::Exists(*v, Box::new(Formula::not((**g).clone())))),
        ),
    }
}

/// Natural join of two translated sub-plans on their shared variables.
fn join_on_shared(
    (lp, lcols): (Plan, Vec<Var>),
    (rp, rcols): (Plan, Vec<Var>),
) -> (Plan, Vec<Var>) {
    let mut keys: Vec<(usize, usize)> = Vec::new();
    for (j, rv) in rcols.iter().enumerate() {
        if let Some(i) = lcols.iter().position(|lv| lv == rv) {
            keys.push((i, j));
        }
    }
    let joined = Plan::Join {
        left: Box::new(lp),
        right: Box::new(rp),
        keys,
    };
    // Keep all left columns, plus right columns for new variables.
    let l_arity = lcols.len();
    let mut out_cols: Vec<usize> = (0..l_arity).collect();
    let mut out_vars = lcols;
    for (j, rv) in rcols.iter().enumerate() {
        if !out_vars.contains(rv) {
            out_cols.push(l_arity + j);
            out_vars.push(*rv);
        }
    }
    (Plan::project(joined, out_cols), out_vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_logic::parser::parse_query;
    use qld_physical::eval_query;

    fn setup() -> (Vocabulary, PhysicalDb) {
        let mut voc = Vocabulary::new();
        let a = voc.add_const("a").unwrap();
        let b = voc.add_const("b").unwrap();
        let r = voc.add_pred("R", 2).unwrap();
        let m = voc.add_pred("M", 1).unwrap();
        let db = PhysicalDb::builder(&voc)
            .domain(0..4)
            .constant(a, 0)
            .constant(b, 1)
            .relation_from_tuples(r, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]])
            .relation_from_tuples(m, vec![vec![0], vec![2]])
            .build()
            .unwrap();
        (voc, db)
    }

    /// The battery: every query here is checked algebra-vs-naive.
    const QUERIES: &[&str] = &[
        "(x) . M(x)",
        "(x, y) . R(x, y)",
        "(x) . exists y. R(x, y) & M(y)",
        "(x, z) . exists y. R(x, y) & R(y, z)",
        "(x) . !M(x)",
        "(x) . M(x) | exists y. R(y, x)",
        "(x) . forall y. R(x, y) -> M(y)",
        "(x, y) . R(x, y) & x != y",
        "(x) . R(a, x)",
        "(x) . R(x, x)",
        "(x) . x = b",
        "(x) . x != a & M(x)",
        "(x, y) . M(x) & M(y)",
        "exists x. M(x) & !M(x)",
        "forall x. M(x) | !M(x)",
        "(x) . M(x) <-> exists y. R(x, y)",
        "(x, y) . R(x, y) | R(y, x)",
        "(x) . exists y, z. R(x, y) & R(y, z) & M(z)",
        "a = b",
        "a = a",
        "(x, y) . x = y & M(x)",
        "(y, x) . R(x, y)",
    ];

    #[test]
    fn algebra_matches_naive_on_battery() {
        let (voc, db) = setup();
        for input in QUERIES {
            let q = parse_query(&voc, input).unwrap();
            let naive = eval_query(&db, &q);
            let plan = compile_query(&voc, &q).unwrap();
            let alg = execute(&db, &plan, ExecOptions::default());
            assert_eq!(alg, naive, "mismatch on {input}");
            // Also through the optimizer and every join algorithm.
            let opt_plan = optimize(&voc, plan);
            for join in [
                crate::exec::JoinAlgo::Hash,
                crate::exec::JoinAlgo::SortMerge,
                crate::exec::JoinAlgo::NestedLoop,
            ] {
                let out = execute(&db, &opt_plan, ExecOptions { join });
                assert_eq!(out, naive, "optimized mismatch on {input} with {join:?}");
            }
        }
    }

    #[test]
    fn head_var_not_in_body_ranges_over_domain() {
        let (voc, db) = setup();
        let q = parse_query(&voc, "(x, y) . M(x)").unwrap();
        let naive = eval_query(&db, &q);
        let plan = compile_query(&voc, &q).unwrap();
        let alg = execute(&db, &plan, ExecOptions::default());
        assert_eq!(alg, naive);
        assert_eq!(alg.len(), 2 * 4);
    }

    #[test]
    fn second_order_rejected() {
        let (voc, _) = setup();
        let q = parse_query(&voc, "exists2 ?S:1. exists x. ?S(x)").unwrap();
        assert_eq!(
            compile_query(&voc, &q).unwrap_err(),
            CompileError::SecondOrder
        );
    }

    #[test]
    fn ordered_compilation_is_equivalent_and_reorders() {
        let (voc, db) = setup();
        // Written worst-first: a padded inequality, then a domain-wide
        // atom, then the selective constant scan. The greedy order should
        // start from the selective scan.
        let q = parse_query(&voc, "(x) . exists y. x != y & R(x, y) & R(a, x)").unwrap();
        let naive = eval_query(&db, &q);
        let plain = compile_query(&voc, &q).unwrap();
        let ordered = crate::compile::compile_query_ordered(&voc, &db, &q).unwrap();
        assert_eq!(execute(&db, &plain, ExecOptions::default()), naive);
        assert_eq!(execute(&db, &ordered, ExecOptions::default()), naive);
        // And under the optimizer too.
        let opt = optimize(&voc, ordered);
        assert_eq!(execute(&db, &opt, ExecOptions::default()), naive);
    }

    #[test]
    fn ordered_compilation_battery() {
        let (voc, db) = setup();
        for input in QUERIES {
            let q = parse_query(&voc, input).unwrap();
            let naive = eval_query(&db, &q);
            let ordered = crate::compile::compile_query_ordered(&voc, &db, &q).unwrap();
            let out = execute(&db, &optimize(&voc, ordered), ExecOptions::default());
            assert_eq!(out, naive, "ordered compile mismatch on {input}");
        }
    }

    #[test]
    fn constant_equality_not_folded_by_symbol() {
        // In a database where two constant symbols share a value, a = b
        // must be TRUE at runtime even though the symbols differ.
        let mut voc = Vocabulary::new();
        let a = voc.add_const("a").unwrap();
        let b = voc.add_const("b").unwrap();
        let db = PhysicalDb::builder(&voc)
            .domain([7])
            .constant(a, 7)
            .constant(b, 7)
            .build()
            .unwrap();
        let q = parse_query(&voc, "a = b").unwrap();
        let plan = compile_query(&voc, &q).unwrap();
        let out = execute(&db, &plan, ExecOptions::default());
        assert_eq!(out.len(), 1, "a = b must hold when I(a) = I(b)");
    }
}
