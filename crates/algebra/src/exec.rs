//! Plan execution against a physical database.

use crate::plan::{Cond, Plan};
use qld_physical::{Elem, PhysicalDb, Relation};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast non-cryptographic hasher (fxhash-style multiply-fold) for join
/// keys: the keys are dense interned ids, HashDoS is not a concern, and
/// the default SipHash dominates probe cost otherwise (ablation A1).
#[derive(Default)]
struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.write_u64(n as u64);
        self.write_u64((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// Join algorithm selection (an ablation axis in the benchmarks).
///
/// Sort-merge is the default: ablation A1 measures it fastest across all
/// relation sizes for this engine's small packed keys (the hash table's
/// per-group allocations dominate before hashing ever wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinAlgo {
    /// Build a hash table on the smaller side, probe with the larger.
    Hash,
    /// Sort both sides by key, merge equal-key groups.
    #[default]
    SortMerge,
    /// Quadratic reference implementation.
    NestedLoop,
}

/// Execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Which join algorithm [`execute`] uses for `Plan::Join`.
    pub join: JoinAlgo,
}

/// Executes a plan, producing the result relation.
///
/// Plans produced by [`crate::compile::compile_query`] are well-formed by
/// construction; hand-built plans with arity mismatches will panic (debug
/// assertions check the invariants).
pub fn execute(db: &PhysicalDb, plan: &Plan, opts: ExecOptions) -> Relation {
    match plan {
        Plan::Values { arity, tuples } => Relation::from_tuples(*arity, tuples.clone()),
        Plan::Dom => Relation::collect(1, db.domain().iter().map(|&e| vec![e])),
        Plan::ConstVal(c) => Relation::collect(1, [vec![db.const_val(*c)]]),
        Plan::Scan(p) => db.relation(*p).clone(),
        Plan::Select { input, conds } => {
            let rel = execute(db, input, opts);
            let tuples: Vec<Box<[Elem]>> = rel
                .iter()
                .filter(|t| conds.iter().all(|c| eval_cond(db, c, t)))
                .map(|t| t.to_vec().into_boxed_slice())
                .collect();
            Relation::from_tuples(rel.arity(), tuples)
        }
        Plan::Project { input, cols } => {
            let rel = execute(db, input, opts);
            let tuples: Vec<Box<[Elem]>> = rel
                .iter()
                .map(|t| cols.iter().map(|&i| t[i]).collect())
                .collect();
            Relation::from_tuples(cols.len(), tuples)
        }
        Plan::Product(l, r) => {
            let left = execute(db, l, opts);
            let right = execute(db, r, opts);
            let arity = left.arity() + right.arity();
            let mut tuples = Vec::with_capacity(left.len() * right.len());
            for lt in left.iter() {
                for rt in right.iter() {
                    let mut t = Vec::with_capacity(arity);
                    t.extend_from_slice(lt);
                    t.extend_from_slice(rt);
                    tuples.push(t.into_boxed_slice());
                }
            }
            Relation::from_tuples(arity, tuples)
        }
        Plan::Join { left, right, keys } => {
            let l = execute(db, left, opts);
            let r = execute(db, right, opts);
            join(&l, &r, keys, opts.join)
        }
        Plan::Union(l, r) => {
            let left = execute(db, l, opts);
            let right = execute(db, r, opts);
            debug_assert_eq!(left.arity(), right.arity(), "union arity mismatch");
            let tuples: Vec<Box<[Elem]>> = left
                .iter()
                .chain(right.iter())
                .map(|t| t.to_vec().into_boxed_slice())
                .collect();
            Relation::from_tuples(left.arity(), tuples)
        }
        Plan::Difference(l, r) => {
            let left = execute(db, l, opts);
            let right = execute(db, r, opts);
            debug_assert_eq!(left.arity(), right.arity(), "difference arity mismatch");
            let tuples: Vec<Box<[Elem]>> = left
                .iter()
                .filter(|t| !right.contains(t))
                .map(|t| t.to_vec().into_boxed_slice())
                .collect();
            Relation::from_tuples(left.arity(), tuples)
        }
    }
}

fn eval_cond(db: &PhysicalDb, cond: &Cond, t: &[Elem]) -> bool {
    match *cond {
        Cond::EqCol(i, j) => t[i] == t[j],
        Cond::NeCol(i, j) => t[i] != t[j],
        Cond::EqConst(i, c) => t[i] == db.const_val(c),
        Cond::NeConst(i, c) => t[i] != db.const_val(c),
    }
}

/// Dispatches to the configured join implementation. Output tuples are
/// left ++ right.
pub fn join(
    left: &Relation,
    right: &Relation,
    keys: &[(usize, usize)],
    algo: JoinAlgo,
) -> Relation {
    match algo {
        JoinAlgo::NestedLoop => nested_loop_join(left, right, keys),
        JoinAlgo::Hash => hash_join(left, right, keys),
        JoinAlgo::SortMerge => sort_merge_join(left, right, keys),
    }
}

fn concat(l: &[Elem], r: &[Elem]) -> Box<[Elem]> {
    let mut t = Vec::with_capacity(l.len() + r.len());
    t.extend_from_slice(l);
    t.extend_from_slice(r);
    t.into_boxed_slice()
}

fn nested_loop_join(left: &Relation, right: &Relation, keys: &[(usize, usize)]) -> Relation {
    let arity = left.arity() + right.arity();
    let mut out = Vec::new();
    for lt in left.iter() {
        for rt in right.iter() {
            if keys.iter().all(|&(li, ri)| lt[li] == rt[ri]) {
                out.push(concat(lt, rt));
            }
        }
    }
    Relation::from_tuples(arity, out)
}

/// Join keys are extracted once per row and packed: up to four 32-bit
/// columns fit a `u128`, avoiding per-row heap allocation in the hash
/// table and during sorting (longer keys are rare in compiled plans and
/// fall back to boxed slices).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Key {
    Packed(u128),
    Wide(Box<[Elem]>),
}

fn key_of(t: &[Elem], cols: &[usize]) -> Key {
    if cols.len() <= 4 {
        let mut packed: u128 = cols.len() as u128; // length-tag avoids collisions
        for &i in cols {
            packed = (packed << 32) | u128::from(t[i]);
        }
        Key::Packed(packed)
    } else {
        Key::Wide(cols.iter().map(|&i| t[i]).collect())
    }
}

fn hash_join(left: &Relation, right: &Relation, keys: &[(usize, usize)]) -> Relation {
    let arity = left.arity() + right.arity();
    if keys.is_empty() {
        return nested_loop_join(left, right, keys); // degenerate: product
    }
    // Build on the smaller side.
    let build_left = left.len() <= right.len();
    let (build, probe) = if build_left {
        (left, right)
    } else {
        (right, left)
    };
    let build_cols: Vec<usize> = if build_left {
        keys.iter().map(|&(l, _)| l).collect()
    } else {
        keys.iter().map(|&(_, r)| r).collect()
    };
    let probe_cols: Vec<usize> = if build_left {
        keys.iter().map(|&(_, r)| r).collect()
    } else {
        keys.iter().map(|&(l, _)| l).collect()
    };
    let mut table: HashMap<Key, Vec<&[Elem]>, FxBuild> =
        HashMap::with_capacity_and_hasher(build.len(), FxBuild::default());
    for t in build.iter() {
        table.entry(key_of(t, &build_cols)).or_default().push(t);
    }
    let mut out = Vec::new();
    for pt in probe.iter() {
        if let Some(matches) = table.get(&key_of(pt, &probe_cols)) {
            for bt in matches {
                out.push(if build_left {
                    concat(bt, pt)
                } else {
                    concat(pt, bt)
                });
            }
        }
    }
    Relation::from_tuples(arity, out)
}

fn sort_merge_join(left: &Relation, right: &Relation, keys: &[(usize, usize)]) -> Relation {
    let arity = left.arity() + right.arity();
    if keys.is_empty() {
        return nested_loop_join(left, right, keys);
    }
    let lkeys: Vec<usize> = keys.iter().map(|&(l, _)| l).collect();
    let rkeys: Vec<usize> = keys.iter().map(|&(_, r)| r).collect();
    // Extract keys once, then sort (key, row) pairs.
    let mut ls: Vec<(Key, &[Elem])> = left.iter().map(|t| (key_of(t, &lkeys), t)).collect();
    let mut rs: Vec<(Key, &[Elem])> = right.iter().map(|t| (key_of(t, &rkeys), t)).collect();
    ls.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    rs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ls.len() && j < rs.len() {
        match ls[i].0.cmp(&rs[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Find the extent of the equal-key groups on both sides.
                let i_end = i + ls[i..].iter().take_while(|(k, _)| *k == ls[i].0).count();
                let j_end = j + rs[j..].iter().take_while(|(k, _)| *k == rs[j].0).count();
                for (_, lt) in &ls[i..i_end] {
                    for (_, rt) in &rs[j..j_end] {
                        out.push(concat(lt, rt));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Relation::from_tuples(arity, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_logic::Vocabulary;

    fn setup() -> (Vocabulary, PhysicalDb) {
        let mut voc = Vocabulary::new();
        let a = voc.add_const("a").unwrap();
        let b = voc.add_const("b").unwrap();
        let r = voc.add_pred("R", 2).unwrap();
        let s = voc.add_pred("S", 2).unwrap();
        let db = PhysicalDb::builder(&voc)
            .domain(0..4)
            .constant(a, 0)
            .constant(b, 1)
            .relation_from_tuples(r, vec![vec![0, 1], vec![1, 2], vec![2, 3]])
            .relation_from_tuples(s, vec![vec![1, 0], vec![2, 1], vec![3, 3]])
            .build()
            .unwrap();
        (voc, db)
    }

    fn all_algos() -> [JoinAlgo; 3] {
        [JoinAlgo::Hash, JoinAlgo::SortMerge, JoinAlgo::NestedLoop]
    }

    #[test]
    fn scan_and_select() {
        let (voc, db) = setup();
        let r = voc.pred_id("R").unwrap();
        let a = voc.const_id("a").unwrap();
        let plan = Plan::select(Plan::Scan(r), vec![Cond::EqConst(0, a)]);
        let out = execute(&db, &plan, ExecOptions::default());
        assert_eq!(out.len(), 1);
        assert!(out.contains(&[0, 1]));
    }

    #[test]
    fn project_reorders_and_dedups() {
        let (voc, db) = setup();
        let r = voc.pred_id("R").unwrap();
        let plan = Plan::project(Plan::Scan(r), vec![1, 0]);
        let out = execute(&db, &plan, ExecOptions::default());
        assert!(out.contains(&[1, 0]));
        assert!(out.contains(&[3, 2]));
        // Project to a constant column set that collapses tuples.
        let plan = Plan::project(Plan::Scan(r), vec![]);
        let out = execute(&db, &plan, ExecOptions::default());
        assert_eq!(out.len(), 1); // nonempty → {()}
    }

    #[test]
    fn joins_agree_across_algorithms() {
        let (voc, db) = setup();
        let r = voc.pred_id("R").unwrap();
        let s = voc.pred_id("S").unwrap();
        let plan = |_algo| Plan::Join {
            left: Box::new(Plan::Scan(r)),
            right: Box::new(Plan::Scan(s)),
            keys: vec![(1, 0)],
        };
        let reference = execute(
            &db,
            &plan(JoinAlgo::NestedLoop),
            ExecOptions {
                join: JoinAlgo::NestedLoop,
            },
        );
        assert!(!reference.is_empty());
        for algo in all_algos() {
            let out = execute(&db, &plan(algo), ExecOptions { join: algo });
            assert_eq!(out, reference, "algo {algo:?} disagrees");
        }
    }

    #[test]
    fn multi_key_join() {
        let (voc, db) = setup();
        let r = voc.pred_id("R").unwrap();
        // Self-join R(x,y) ⋈ R(x,y) on both columns = identity.
        let plan = Plan::Join {
            left: Box::new(Plan::Scan(r)),
            right: Box::new(Plan::Scan(r)),
            keys: vec![(0, 0), (1, 1)],
        };
        for algo in all_algos() {
            let out = execute(&db, &plan, ExecOptions { join: algo });
            assert_eq!(out.len(), 3, "algo {algo:?}");
            assert!(out.contains(&[0, 1, 0, 1]));
        }
    }

    #[test]
    fn empty_key_join_is_product() {
        let (voc, db) = setup();
        let r = voc.pred_id("R").unwrap();
        let plan = Plan::Join {
            left: Box::new(Plan::Scan(r)),
            right: Box::new(Plan::Dom),
            keys: vec![],
        };
        for algo in all_algos() {
            let out = execute(&db, &plan, ExecOptions { join: algo });
            assert_eq!(out.len(), 12, "algo {algo:?}"); // 3 tuples × 4 domain
        }
    }

    #[test]
    fn union_difference() {
        let (voc, db) = setup();
        let r = voc.pred_id("R").unwrap();
        let s = voc.pred_id("S").unwrap();
        let u = execute(
            &db,
            &Plan::Union(Box::new(Plan::Scan(r)), Box::new(Plan::Scan(s))),
            ExecOptions::default(),
        );
        assert_eq!(u.len(), 6);
        let d = execute(
            &db,
            &Plan::Difference(Box::new(Plan::Scan(r)), Box::new(Plan::Scan(s))),
            ExecOptions::default(),
        );
        assert_eq!(d.len(), 3); // disjoint
        let d2 = execute(
            &db,
            &Plan::Difference(Box::new(Plan::Scan(r)), Box::new(Plan::Scan(r))),
            ExecOptions::default(),
        );
        assert!(d2.is_empty());
    }

    #[test]
    fn dom_and_constval() {
        let (voc, db) = setup();
        let b = voc.const_id("b").unwrap();
        let dom = execute(&db, &Plan::Dom, ExecOptions::default());
        assert_eq!(dom.len(), 4);
        let cv = execute(&db, &Plan::ConstVal(b), ExecOptions::default());
        assert_eq!(cv.len(), 1);
        assert!(cv.contains(&[1]));
    }

    #[test]
    fn ne_conditions() {
        let (voc, db) = setup();
        let r = voc.pred_id("R").unwrap();
        let a = voc.const_id("a").unwrap();
        let plan = Plan::select(Plan::Scan(r), vec![Cond::NeConst(0, a), Cond::NeCol(0, 1)]);
        let out = execute(&db, &plan, ExecOptions::default());
        assert_eq!(out.len(), 2); // (1,2),(2,3)
    }
}
