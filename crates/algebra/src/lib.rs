//! A small relational-algebra engine — the "standard relational system"
//! substrate of §5.
//!
//! The paper's practical proposal is to store a logical database as the
//! physical database `Ph₂(LB)` and *compile* queries onto a standard
//! relational system. This crate is that system:
//!
//! * [`plan::Plan`] — relational-algebra plans (scan, select, project,
//!   product, equi-join, union, difference, domain scan);
//! * [`exec`] — an executor with three join algorithms (nested-loop, hash,
//!   sort-merge), selectable per run and benchmarked as an ablation;
//! * [`compile`] — the classic Codd translation from first-order queries
//!   to algebra over the active domain. Because every [`PhysicalDb`]
//!   carries its finite domain explicitly, the translation is total on
//!   first-order queries and agrees *exactly* with the naive Tarskian
//!   evaluator (property-tested);
//! * [`opt`] — a conservative rewrite pass (selection fusion & pushdown,
//!   product-to-join conversion, projection fusion).
//!
//! [`PhysicalDb`]: qld_physical::PhysicalDb

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod display;
pub mod exec;
pub mod opt;
pub mod plan;
pub mod stats;

pub use compile::{compile_query, compile_query_ordered, CompileError};
pub use display::display_plan;
pub use exec::{execute, ExecOptions, JoinAlgo};
pub use opt::optimize;
pub use plan::{Cond, Plan};
pub use stats::{CardinalityEstimator, UniformEstimator};
