//! Relational-algebra plans.

use qld_logic::{ConstId, PredId, Vocabulary};
use qld_physical::Elem;

/// A selection condition over the columns of a plan's output.
///
/// Constant comparisons reference *constant symbols*, resolved against the
/// database at execution time — never pre-folded, because in the image
/// databases `h(Ph₁(LB))` two distinct constant symbols may denote the same
/// element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Column `i` equals column `j`.
    EqCol(usize, usize),
    /// Column `i` equals the value of constant `c`.
    EqConst(usize, ConstId),
    /// Column `i` differs from column `j`.
    NeCol(usize, usize),
    /// Column `i` differs from the value of constant `c`.
    NeConst(usize, ConstId),
}

impl Cond {
    /// The columns this condition reads.
    pub fn columns(&self) -> (usize, Option<usize>) {
        match self {
            Cond::EqCol(i, j) | Cond::NeCol(i, j) => (*i, Some(*j)),
            Cond::EqConst(i, _) | Cond::NeConst(i, _) => (*i, None),
        }
    }

    /// Shifts every column reference left by `offset` (used when pushing
    /// conditions below the right side of a product).
    pub fn shifted_left(&self, offset: usize) -> Cond {
        match *self {
            Cond::EqCol(i, j) => Cond::EqCol(i - offset, j - offset),
            Cond::NeCol(i, j) => Cond::NeCol(i - offset, j - offset),
            Cond::EqConst(i, c) => Cond::EqConst(i - offset, c),
            Cond::NeConst(i, c) => Cond::NeConst(i - offset, c),
        }
    }
}

/// A relational-algebra plan. Output columns are positional.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// A literal relation.
    Values {
        /// Output arity.
        arity: usize,
        /// The tuples (not necessarily sorted; the executor normalizes).
        tuples: Vec<Box<[Elem]>>,
    },
    /// The full domain as a unary relation (the "Dom" relation of the
    /// active-domain translation — exact here, since domains are finite
    /// and explicit).
    Dom,
    /// The singleton unary relation `{I(c)}`.
    ConstVal(ConstId),
    /// A base relation.
    Scan(PredId),
    /// `σ_conds(input)`.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Conjunction of conditions.
        conds: Vec<Cond>,
    },
    /// `π_cols(input)` — may reorder and duplicate columns.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// For each output column, the input column it copies.
        cols: Vec<usize>,
    },
    /// Cartesian product; output columns are left's then right's.
    Product(Box<Plan>, Box<Plan>),
    /// Equi-join on `keys = [(left_col, right_col), …]`; output columns
    /// are left's then right's (join columns are *not* deduplicated).
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Pairs of (left column, right column) that must be equal.
        keys: Vec<(usize, usize)>,
    },
    /// Set union (same arity both sides).
    Union(Box<Plan>, Box<Plan>),
    /// Set difference `left ∖ right` (same arity both sides).
    Difference(Box<Plan>, Box<Plan>),
}

impl Plan {
    /// Output arity of the plan.
    pub fn arity(&self, voc: &Vocabulary) -> usize {
        match self {
            Plan::Values { arity, .. } => *arity,
            Plan::Dom | Plan::ConstVal(_) => 1,
            Plan::Scan(p) => voc.pred_arity(*p),
            Plan::Select { input, .. } => input.arity(voc),
            Plan::Project { cols, .. } => cols.len(),
            Plan::Product(l, r)
            | Plan::Join {
                left: l, right: r, ..
            } => l.arity(voc) + r.arity(voc),
            Plan::Union(l, _) | Plan::Difference(l, _) => l.arity(voc),
        }
    }

    /// Number of operator nodes (for optimizer tests and plan statistics).
    pub fn num_nodes(&self) -> usize {
        match self {
            Plan::Values { .. } | Plan::Dom | Plan::ConstVal(_) | Plan::Scan(_) => 1,
            Plan::Select { input, .. } => 1 + input.num_nodes(),
            Plan::Project { input, .. } => 1 + input.num_nodes(),
            Plan::Product(l, r)
            | Plan::Join {
                left: l, right: r, ..
            }
            | Plan::Union(l, r)
            | Plan::Difference(l, r) => 1 + l.num_nodes() + r.num_nodes(),
        }
    }

    /// Convenience constructor: selection (drops empty condition lists).
    pub fn select(input: Plan, conds: Vec<Cond>) -> Plan {
        if conds.is_empty() {
            input
        } else {
            Plan::Select {
                input: Box::new(input),
                conds,
            }
        }
    }

    /// Convenience constructor: projection.
    pub fn project(input: Plan, cols: Vec<usize>) -> Plan {
        Plan::Project {
            input: Box::new(input),
            cols,
        }
    }

    /// The empty relation of a given arity.
    pub fn empty(arity: usize) -> Plan {
        Plan::Values {
            arity,
            tuples: Vec::new(),
        }
    }

    /// The unit relation `{()}` (identity for products).
    pub fn unit() -> Plan {
        Plan::Values {
            arity: 0,
            tuples: vec![Vec::new().into_boxed_slice()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_computation() {
        let mut voc = Vocabulary::new();
        voc.add_const("a").unwrap();
        let r = voc.add_pred("R", 2).unwrap();
        let plan = Plan::project(
            Plan::Join {
                left: Box::new(Plan::Scan(r)),
                right: Box::new(Plan::Dom),
                keys: vec![(1, 0)],
            },
            vec![0],
        );
        assert_eq!(plan.arity(&voc), 1);
        assert_eq!(plan.num_nodes(), 4);
    }

    #[test]
    fn select_constructor_drops_empty() {
        let p = Plan::select(Plan::Dom, vec![]);
        assert_eq!(p, Plan::Dom);
    }

    #[test]
    fn cond_shift() {
        assert_eq!(Cond::EqCol(3, 5).shifted_left(2), Cond::EqCol(1, 3));
        let c = ConstId(0);
        assert_eq!(Cond::NeConst(4, c).shifted_left(4), Cond::NeConst(0, c));
    }
}
