//! Cardinality estimation and greedy join ordering.
//!
//! The Codd translation folds conjunctions left to right, which can build
//! a terrible join order (e.g. a cross product before a selective scan).
//! [`order_conjuncts`] implements the classic greedy heuristic: start
//! from the smallest estimated input, then repeatedly take the cheapest
//! *connected* conjunct (one sharing a variable with what has been joined
//! so far), falling back to the cheapest disconnected one only when
//! nothing is connected. `compile_query_ordered` plugs this into the
//! compiler; the workspace equivalence tests run it against the naive
//! order on random queries.

use crate::plan::Plan;
use qld_logic::{PredId, Var};
use qld_physical::PhysicalDb;

/// Source of table and domain cardinalities for planning.
pub trait CardinalityEstimator {
    /// Estimated number of rows of a base relation.
    fn scan_rows(&self, p: PredId) -> usize;
    /// Size of the domain (`Dom` scans, padding products).
    fn domain_size(&self) -> usize;
}

impl CardinalityEstimator for PhysicalDb {
    fn scan_rows(&self, p: PredId) -> usize {
        self.relation(p).len()
    }

    fn domain_size(&self) -> usize {
        self.domain().len()
    }
}

/// A fixed-shape estimator for planning without a database at hand
/// (uniform table size, configurable domain).
#[derive(Debug, Clone)]
pub struct UniformEstimator {
    /// Row count assumed for every base relation.
    pub rows_per_table: usize,
    /// Assumed domain size.
    pub domain: usize,
}

impl CardinalityEstimator for UniformEstimator {
    fn scan_rows(&self, _p: PredId) -> usize {
        self.rows_per_table
    }

    fn domain_size(&self) -> usize {
        self.domain
    }
}

/// Rough output-cardinality estimate of a translated sub-plan. Scans
/// count their table; everything else is bounded by the tuple space of
/// its columns. Good enough to separate "a selective scan" from "a
/// padded domain product", which is what the greedy order needs.
pub fn estimate_plan(est: &dyn CardinalityEstimator, plan: &Plan) -> f64 {
    match plan {
        Plan::Values { tuples, .. } => tuples.len() as f64,
        Plan::Dom => est.domain_size() as f64,
        Plan::ConstVal(_) => 1.0,
        Plan::Scan(p) => est.scan_rows(*p) as f64,
        // Selections filter: attenuate by a conventional factor per
        // condition.
        Plan::Select { input, conds } => estimate_plan(est, input) / (1.0 + conds.len() as f64),
        Plan::Project { input, .. } => estimate_plan(est, input),
        Plan::Product(l, r) => estimate_plan(est, l) * estimate_plan(est, r),
        Plan::Join { left, right, keys } => {
            let cross = estimate_plan(est, left) * estimate_plan(est, right);
            // Each key equality divides by the domain size (uniformity
            // assumption).
            cross / (est.domain_size().max(1) as f64).powi(keys.len() as i32)
        }
        Plan::Union(l, r) => estimate_plan(est, l) + estimate_plan(est, r),
        Plan::Difference(l, _) => estimate_plan(est, l),
    }
}

/// Greedy ordering of conjunct sub-plans (each given with its estimated
/// cardinality and output variables). Returns the order as indices into
/// the input.
pub fn order_conjuncts(items: &[(f64, Vec<Var>)]) -> Vec<usize> {
    let n = items.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let mut remaining: Vec<usize> = (0..n).collect();
    // Seed: globally cheapest.
    let seed_pos = remaining
        .iter()
        .enumerate()
        .min_by(|(_, &a), (_, &b)| items[a].0.total_cmp(&items[b].0))
        .map(|(pos, _)| pos)
        .expect("nonempty");
    let mut order = vec![remaining.swap_remove(seed_pos)];
    let mut bound: Vec<Var> = items[order[0]].1.clone();
    while !remaining.is_empty() {
        let connected = |idx: usize| items[idx].1.iter().any(|v| bound.contains(v));
        let pick_pos = remaining
            .iter()
            .enumerate()
            .filter(|(_, &idx)| connected(idx))
            .min_by(|(_, &a), (_, &b)| items[a].0.total_cmp(&items[b].0))
            .map(|(pos, _)| pos)
            .or_else(|| {
                remaining
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| items[a].0.total_cmp(&items[b].0))
                    .map(|(pos, _)| pos)
            })
            .expect("nonempty");
        let idx = remaining.swap_remove(pick_pos);
        for v in &items[idx].1 {
            if !bound.contains(v) {
                bound.push(*v);
            }
        }
        order.push(idx);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_logic::Vocabulary;

    #[test]
    fn uniform_estimator() {
        let est = UniformEstimator {
            rows_per_table: 10,
            domain: 5,
        };
        assert_eq!(est.scan_rows(PredId(0)), 10);
        assert_eq!(est.domain_size(), 5);
    }

    #[test]
    fn estimate_respects_structure() {
        let mut voc = Vocabulary::new();
        let r = voc.add_pred("R", 2).unwrap();
        let est = UniformEstimator {
            rows_per_table: 100,
            domain: 10,
        };
        let scan = Plan::Scan(r);
        let product = Plan::Product(Box::new(scan.clone()), Box::new(Plan::Dom));
        let join = Plan::Join {
            left: Box::new(scan.clone()),
            right: Box::new(scan.clone()),
            keys: vec![(1, 0)],
        };
        let e_scan = estimate_plan(&est, &scan);
        let e_prod = estimate_plan(&est, &product);
        let e_join = estimate_plan(&est, &join);
        assert_eq!(e_scan, 100.0);
        assert_eq!(e_prod, 1000.0);
        assert_eq!(e_join, 1000.0); // 100·100/10
        assert!(e_join < e_prod * e_scan);
    }

    #[test]
    fn greedy_starts_at_cheapest() {
        let items = vec![
            (100.0, vec![Var(0), Var(1)]),
            (1.0, vec![Var(1), Var(2)]),
            (50.0, vec![Var(2), Var(3)]),
        ];
        let order = order_conjuncts(&items);
        assert_eq!(order[0], 1);
        // Both others connect through shared variables; cheaper first.
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn greedy_prefers_connected_over_cheaper_disconnected() {
        let items = vec![
            (1.0, vec![Var(0)]),
            (5.0, vec![Var(0), Var(1)]), // connected to seed
            (2.0, vec![Var(9)]),         // cheaper but a cross product
        ];
        let order = order_conjuncts(&items);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(order_conjuncts(&[]).is_empty());
        assert_eq!(order_conjuncts(&[(3.0, vec![])]), vec![0]);
    }
}
