//! # qld_server — the TCP network front-end for the shared engine
//!
//! A std-only (no async runtime) line-protocol server that exposes a
//! [`SharedEngine`] over sockets, speaking the same `:batch` script
//! dialect the CLI runs locally (see [`script`]). The design is the
//! classic thread-per-connection loop over the snapshot-publish core
//! built in `qld_engine::concurrent`:
//!
//! * the accept loop hands each connection its own OS thread and one
//!   persistent [`SharedSession`] — reads are wait-free against the
//!   epoch-stamped published snapshot, `:insert`/`:assert-ne` route
//!   through the engine's single writer, and every reply carries the
//!   epoch that produced it (see [`proto`] for the framing);
//! * **admission control** is layered: a connection cap
//!   ([`ServerConfig::max_connections`], excess connections get
//!   `error: busy` and are closed), optional per-connection query/delta
//!   quotas (`error: quota`), an optional shared-secret token
//!   ([`ServerConfig::auth_token`], checked before anything else), and —
//!   at the engine layer — `mapping_budget`, which makes Auto refuse
//!   hopeless Theorem 1 enumerations with a certified bound instead of
//!   burning the server's CPU;
//! * **graceful shutdown**: [`ServerHandle::shutdown`] (or the
//!   `:shutdown` wire command) flips a flag; the accept loop stops
//!   accepting, every connection thread finishes its in-flight reply,
//!   notices the flag at its next poll tick, and the server joins them
//!   all before returning — no reply is ever cut off mid-frame;
//! * per-connection [`ConnectionStats`] (queries, cache hits, deltas,
//!   rejections) fold into aggregate [`ServerStats`] counters and are
//!   reported live in the `:stats` reply.
//!
//! The crate also ships the blocking [`Client`] used by the e2e tests,
//! the CI smoke driver, and `qld_bench::socket_load`.
//!
//! ```no_run
//! use qld_engine::{Engine, SharedEngine};
//! use qld_server::{Client, Server, ServerConfig};
//! # let db: qld_core::CwDatabase = unimplemented!();
//!
//! let shared = SharedEngine::new(Engine::new(db));
//! let server = Server::bind(shared, ServerConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! let running = server.spawn().unwrap();
//!
//! let mut client = Client::connect(addr).unwrap();
//! let reply = client.request("(x) . TEACHES(socrates, x)").unwrap();
//! assert!(reply.is_ok());
//! println!("{:?} at epoch {:?}", reply.answers, reply.epoch);
//! running.shutdown().unwrap();
//! ```

#![forbid(unsafe_code)]

pub mod proto;
pub mod replication;
pub mod script;

use proto::{Hello, Reply, PROTOCOL_VERSION};
use qld_engine::{SharedEngine, SharedSession};
use script::ScriptLine;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often blocked reads and the accept loop re-check the shutdown
/// flag. Small enough that shutdown feels immediate, large enough that
/// an idle server burns no measurable CPU.
const POLL_TICK: Duration = Duration::from_millis(20);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port; read the
    /// actual one back with [`Server::local_addr`]).
    pub addr: String,
    /// Connection cap: further connections are greeted with
    /// `error: busy` and closed immediately.
    pub max_connections: usize,
    /// Optional shared secret. When set, the first request on every
    /// connection must be `auth <token>`; anything else (or a wrong
    /// token) gets `error: auth` and the connection is closed.
    pub auth_token: Option<String>,
    /// Per-connection query quota: the connection is closed with
    /// `error: quota` when a request would exceed it.
    pub query_quota: Option<u64>,
    /// Per-connection delta quota (`:insert`/`:assert-ne`).
    pub delta_quota: Option<u64>,
    /// Idle cutoff: a connection that sends nothing for this long is
    /// closed with `error: timeout`.
    pub read_timeout: Duration,
    /// Socket write timeout for replies (a stuck client cannot wedge a
    /// connection thread forever).
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            auth_token: None,
            query_quota: None,
            delta_quota: None,
            read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Structured statistics of one connection, folded into the server
/// aggregates when the connection closes and reported in its `:stats`
/// reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectionStats {
    /// Queries answered on this connection.
    pub queries: u64,
    /// Of those, answers served from the shared epoch-keyed cache.
    pub cache_hits: u64,
    /// Deltas applied by this connection.
    pub deltas: u64,
    /// Requests refused (auth failures, quota/timeout closures, script
    /// and engine errors).
    pub rejections: u64,
}

/// Aggregate server counters (monotone over the server's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted into a handler thread.
    pub connections_accepted: u64,
    /// Connections turned away by the `max_connections` cap.
    pub connections_rejected: u64,
    /// Connections currently being served.
    pub active_connections: usize,
    /// Queries answered across all connections.
    pub queries_served: u64,
    /// Of those, shared-cache hits.
    pub cache_hits: u64,
    /// Deltas applied across all connections.
    pub deltas_applied: u64,
    /// `error:` terminators sent.
    pub errors_sent: u64,
    /// Malformed frames refused at the transport layer (over-long
    /// request lines, invalid UTF-8) — before script parsing even runs.
    pub protocol_errors: u64,
}

#[derive(Debug, Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    queries_served: AtomicU64,
    cache_hits: AtomicU64,
    deltas_applied: AtomicU64,
    errors_sent: AtomicU64,
    protocol_errors: AtomicU64,
}

#[derive(Debug)]
struct ServerState {
    shutdown: AtomicBool,
    active: AtomicUsize,
    counters: Counters,
}

impl ServerState {
    fn stats(&self) -> ServerStats {
        ServerStats {
            connections_accepted: self.counters.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.counters.connections_rejected.load(Ordering::Relaxed),
            active_connections: self.active.load(Ordering::Relaxed),
            queries_served: self.counters.queries_served.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            deltas_applied: self.counters.deltas_applied.load(Ordering::Relaxed),
            errors_sent: self.counters.errors_sent.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// A cloneable remote control for a running [`Server`]: signal shutdown
/// and read live statistics from any thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals graceful shutdown: stop accepting, drain in-flight
    /// replies, join every connection thread. [`Server::run`] returns
    /// once the drain completes.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Release);
    }

    /// Whether shutdown has been signalled.
    pub fn is_shutdown(&self) -> bool {
        self.state.shutdown.load(Ordering::Acquire)
    }

    /// A snapshot of the aggregate counters.
    pub fn stats(&self) -> ServerStats {
        self.state.stats()
    }
}

/// The TCP front-end: a bound listener plus the [`SharedEngine`] it
/// serves. Drive it with [`Server::run`] (blocking) or
/// [`Server::spawn`] (own thread, for tests and embedding).
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: SharedEngine,
    config: Arc<ServerConfig>,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener. The engine keeps serving local sessions too —
    /// `SharedEngine` is already shared; the server is just one more
    /// front door.
    pub fn bind(shared: SharedEngine, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            shared,
            config: Arc::new(config),
            state: Arc::new(ServerState {
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                counters: Counters::default(),
            }),
        })
    }

    /// The bound address (the real port when the config asked for `:0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A remote control valid for this server's whole lifetime.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            state: self.state.clone(),
        })
    }

    /// Runs the accept loop until shutdown is signalled (via a
    /// [`ServerHandle`] or the `:shutdown` wire command), then joins
    /// every connection thread so all in-flight replies drain before
    /// returning.
    pub fn run(self) -> io::Result<()> {
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        while !self.state.shutdown.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    workers.retain(|w| !w.is_finished());
                    if self.state.active.load(Ordering::Relaxed) >= self.config.max_connections {
                        self.state
                            .counters
                            .connections_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        reject_busy(stream, self.config.max_connections);
                        continue;
                    }
                    self.state.active.fetch_add(1, Ordering::Relaxed);
                    self.state
                        .counters
                        .connections_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    let session = self.shared.session();
                    let shared = self.shared.clone();
                    let config = self.config.clone();
                    let state = self.state.clone();
                    workers.push(thread::spawn(move || {
                        let _ = serve_connection(stream, session, shared, &config, &state);
                        state.active.fetch_sub(1, Ordering::Relaxed);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_TICK),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.state.shutdown.store(true, Ordering::Release);
                    for worker in workers {
                        let _ = worker.join();
                    }
                    return Err(e);
                }
            }
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Spawns [`Server::run`] on its own thread and returns the pair of
    /// remote control + join handle.
    pub fn spawn(self) -> io::Result<RunningServer> {
        let handle = self.handle()?;
        let thread = thread::Builder::new()
            .name("qld-server-accept".to_string())
            .spawn(move || self.run())?;
        Ok(RunningServer { handle, thread })
    }
}

/// A server running on its own thread (from [`Server::spawn`]).
#[derive(Debug)]
pub struct RunningServer {
    handle: ServerHandle,
    thread: JoinHandle<io::Result<()>>,
}

impl RunningServer {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// A cloneable remote control.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// A snapshot of the aggregate counters.
    pub fn stats(&self) -> ServerStats {
        self.handle.stats()
    }

    /// Signals shutdown and waits for the full drain.
    pub fn shutdown(self) -> io::Result<()> {
        self.handle.shutdown();
        self.join()
    }

    /// Waits for the server to stop on its own (e.g. after a client's
    /// `:shutdown`).
    pub fn join(self) -> io::Result<()> {
        self.thread.join().expect("server accept thread panicked")
    }
}

/// Tells an over-cap connection why it is being dropped. Best-effort:
/// the socket may already be gone.
fn reject_busy(stream: TcpStream, cap: usize) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut stream = stream;
    let _ = writeln!(
        stream,
        "error: busy: connection limit reached ({cap} active)"
    );
}

/// Longest accepted request line in bytes, newline included. Orders of
/// magnitude beyond any sane query, and small enough that a hostile
/// peer streaming an endless "line" cannot balloon a connection
/// thread's memory.
const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// What [`read_request`] produced.
enum Request {
    /// A complete UTF-8 request line is in the caller's buffer.
    Line,
    /// A malformed frame (invalid UTF-8) was refused with a
    /// `error: protocol:` reply; the connection stays usable — the
    /// newline still framed the request, so the stream is in sync.
    Skip,
    /// The connection is finished (EOF, shutdown, idle timeout,
    /// over-long line, hard I/O error). Any diagnostic owed to the
    /// client has already been sent.
    Closed,
}

/// Reads one request line as raw bytes — bounded, UTF-8-validated, and
/// polling the shutdown flag and the idle clock between socket
/// timeouts. Malformed input is answered with a clean per-connection
/// `error: protocol:` reply (and counted), never a panic or a wedged
/// connection; the diagnostics are sent here because only this loop
/// knows which transport rule fired.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    line: &mut String,
    config: &ServerConfig,
    state: &ServerState,
    stats: &mut ConnectionStats,
) -> Request {
    line.clear();
    let mut buf: Vec<u8> = Vec::new();
    let idle_since = Instant::now();
    let protocol_error = |stats: &mut ConnectionStats, writer: &mut TcpStream, what: &str| {
        stats.rejections += 1;
        state
            .counters
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
        state.counters.errors_sent.fetch_add(1, Ordering::Relaxed);
        let _ = writeln!(writer, "error: protocol: {what}");
    };
    loop {
        let (take, complete) = match reader.fill_buf() {
            // EOF: a trailing unterminated line still counts as a
            // request (matching what a buffered line reader would do).
            Ok([]) if buf.is_empty() => return Request::Closed,
            Ok([]) => (0, true),
            Ok(available) => {
                let newline = available.iter().position(|&b| b == b'\n');
                (
                    newline.map_or(available.len(), |i| i + 1),
                    newline.is_some(),
                )
            }
            // A timeout tick: bytes already taken stay in `buf`, so
            // retrying is lossless.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if state.shutdown.load(Ordering::Acquire) {
                    return Request::Closed;
                }
                if idle_since.elapsed() >= config.read_timeout {
                    stats.rejections += 1;
                    state.counters.errors_sent.fetch_add(1, Ordering::Relaxed);
                    let _ = writeln!(writer, "error: timeout: idle for {:?}", config.read_timeout);
                    return Request::Closed;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Request::Closed,
        };
        if buf.len() + take > MAX_REQUEST_BYTES {
            // Closing (rather than draining to the next newline) is
            // deliberate: the peer is either broken or hostile, and the
            // rest of the oversized line is unbounded.
            protocol_error(
                stats,
                writer,
                &format!("request line exceeds {MAX_REQUEST_BYTES} bytes"),
            );
            return Request::Closed;
        }
        buf.extend_from_slice(&reader.buffer()[..take]);
        reader.consume(take);
        if complete {
            match std::str::from_utf8(&buf) {
                Ok(text) => {
                    line.push_str(text);
                    return Request::Line;
                }
                Err(_) => {
                    protocol_error(stats, writer, "request line is not valid UTF-8");
                    return Request::Skip;
                }
            }
        }
    }
}

/// One connection, start to finish: greeting, optional auth handshake,
/// then the request/reply loop. Every reply is composed in full and
/// written with a single syscall, so a reply is never interleaved or cut
/// off mid-frame. Returns the connection's final stats (also folded into
/// the aggregates).
fn serve_connection(
    stream: TcpStream,
    mut session: SharedSession,
    shared: SharedEngine,
    config: &ServerConfig,
    state: &ServerState,
) -> io::Result<ConnectionStats> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(POLL_TICK))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);

    let hello = Hello {
        version: PROTOCOL_VERSION,
        epoch: shared.epoch(),
        auth_required: config.auth_token.is_some(),
    };
    writer.write_all(format!("{}\n", hello.render()).as_bytes())?;

    let mut stats = ConnectionStats::default();
    let mut authed = config.auth_token.is_none();
    let mut line = String::new();
    let mut reply = String::new();
    loop {
        match read_request(
            &mut reader,
            &mut writer,
            &mut line,
            config,
            state,
            &mut stats,
        ) {
            Request::Line => {}
            // The protocol error has been replied to; the stream is
            // still framed, so keep serving (but honour shutdown).
            Request::Skip => {
                if state.shutdown.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
            Request::Closed => break,
        }
        let request = line.trim();
        reply.clear();
        let mut close = false;

        if !authed {
            let mut words = request.split_whitespace();
            let ok = words.next() == Some("auth")
                && words.next() == config.auth_token.as_deref()
                && words.next().is_none();
            if ok {
                authed = true;
                let _ = writeln!(reply, "done: epoch={}", shared.epoch());
            } else {
                stats.rejections += 1;
                state.counters.errors_sent.fetch_add(1, Ordering::Relaxed);
                let _ = writeln!(reply, "error: auth: this server requires `auth <token>`");
                close = true;
            }
        } else if request.split_whitespace().next() == Some("auth") {
            // Re-authenticating an open or already-authed connection is a
            // harmless no-op.
            let _ = writeln!(reply, "done: epoch={}", shared.epoch());
        } else if request.split_whitespace().next() == Some(":follow") {
            // A follower takes the connection over entirely: it becomes a
            // replication feed until the follower drops or the server
            // shuts down, then closes. Write errors just mean the
            // follower went away — it reconnects and resumes on its own.
            let _ = replication::serve_feed(request, &mut writer, &shared, state);
            break;
        } else {
            close = handle_request(
                request,
                &mut session,
                &shared,
                config,
                state,
                &mut stats,
                &mut reply,
            );
        }

        writer.write_all(reply.as_bytes())?;
        // Re-check shutdown after every completed reply, not only on idle
        // read ticks: a client streaming requests back-to-back never
        // leaves the socket idle, and must not be able to hold the drain
        // hostage.
        if close || state.shutdown.load(Ordering::Acquire) {
            break;
        }
    }

    let c = &state.counters;
    c.queries_served.fetch_add(stats.queries, Ordering::Relaxed);
    c.cache_hits.fetch_add(stats.cache_hits, Ordering::Relaxed);
    c.deltas_applied.fetch_add(stats.deltas, Ordering::Relaxed);
    Ok(stats)
}

/// Dispatches one authenticated request into `reply`; returns whether
/// the connection must close afterwards.
fn handle_request(
    request: &str,
    session: &mut SharedSession,
    shared: &SharedEngine,
    config: &ServerConfig,
    state: &ServerState,
    stats: &mut ConnectionStats,
    reply: &mut String,
) -> bool {
    if request == ":promote" {
        // Failover: turn this follower into a writable primary under a
        // bumped generation. Admin-only in the sense that it rides the
        // same auth gate as every other request.
        match shared.promote() {
            Ok(generation) => {
                let _ = writeln!(reply, "promoted: generation={generation}");
                let _ = writeln!(reply, "done: epoch={}", shared.epoch());
            }
            Err(e) => {
                state.counters.errors_sent.fetch_add(1, Ordering::Relaxed);
                let _ = writeln!(reply, "error: {e}");
            }
        }
        return false;
    }
    let snapshot = shared.snapshot();
    let mode = snapshot.engine().semantics();
    let parsed = script::parse_line(snapshot.engine().db().voc(), request);
    match parsed {
        Ok(None) => {
            // Blank lines and comments are acknowledged so that 1 request
            // line always equals 1 reply frame.
            let _ = writeln!(reply, "done: epoch={}", snapshot.epoch());
            false
        }
        Ok(Some(ScriptLine::Quit)) => {
            let _ = writeln!(reply, "done: epoch={}", snapshot.epoch());
            true
        }
        Ok(Some(ScriptLine::Shutdown)) => {
            let _ = writeln!(reply, "done: epoch={}", snapshot.epoch());
            state.shutdown.store(true, Ordering::Release);
            true
        }
        Ok(Some(ScriptLine::Stats)) => {
            let server = state.stats();
            let _ = writeln!(
                reply,
                "stat: connection: {} query(s) ({} cache hit(s)), {} delta(s), {} rejection(s)",
                stats.queries, stats.cache_hits, stats.deltas, stats.rejections
            );
            let _ = writeln!(
                reply,
                "stat: server: {} active connection(s), {} accepted, {} rejected, \
                 {} query(s) served, {} delta(s) applied, {} protocol error(s)",
                server.active_connections,
                server.connections_accepted,
                server.connections_rejected,
                server.queries_served + stats.queries,
                server.deltas_applied + stats.deltas,
                server.protocol_errors
            );
            let _ = writeln!(reply, "stat: snapshot: {}", shared.snapshot_stats());
            let engine = shared.stats();
            let _ = writeln!(
                reply,
                "stat: replication: role={} generation={} applied={} lag={} followers={}",
                if engine.read_only {
                    "follower"
                } else {
                    "primary"
                },
                engine.generation,
                engine.epoch,
                engine.replication_lag(),
                engine.followers
            );
            if let Some(wal) = shared.wal_stats() {
                let _ = writeln!(reply, "stat: wal: {wal}");
            }
            if shared.wal_poisoned() {
                let _ = writeln!(
                    reply,
                    "stat: wal: write-poisoned by an earlier WAL failure — reads \
                     serve the last durable epoch, every write fails; restart and \
                     recover from the log"
                );
            }
            let _ = writeln!(reply, "done: epoch={}", shared.epoch());
            false
        }
        Ok(Some(ScriptLine::Query(query))) => {
            if let Some(quota) = config.query_quota {
                if stats.queries >= quota {
                    stats.rejections += 1;
                    state.counters.errors_sent.fetch_add(1, Ordering::Relaxed);
                    let _ = writeln!(reply, "error: quota: query quota exhausted (limit {quota})");
                    return true;
                }
            }
            let is_boolean = query.is_boolean();
            let answers = session
                .prepare(query)
                .and_then(|prepared| session.execute_as(&prepared, mode));
            match answers {
                Ok(answers) => {
                    stats.queries += 1;
                    if answers.evidence().cache_hit {
                        stats.cache_hits += 1;
                    }
                    let voc = snapshot.engine().db().voc();
                    for line in proto::answer_lines(voc, mode, is_boolean, &answers) {
                        let _ = writeln!(reply, "answer: {line}");
                    }
                    let _ = writeln!(
                        reply,
                        "evidence: {}",
                        proto::evidence_tag(answers.evidence())
                    );
                    let _ = writeln!(reply, "done: epoch={}", answers.evidence().epoch);
                }
                Err(e) => {
                    stats.rejections += 1;
                    state.counters.errors_sent.fetch_add(1, Ordering::Relaxed);
                    let _ = writeln!(reply, "error: {e}");
                }
            }
            false
        }
        Ok(Some(mutation @ (ScriptLine::Insert(..) | ScriptLine::AssertNe(..)))) => {
            if let Some(quota) = config.delta_quota {
                if stats.deltas >= quota {
                    stats.rejections += 1;
                    state.counters.errors_sent.fetch_add(1, Ordering::Relaxed);
                    let _ = writeln!(reply, "error: quota: delta quota exhausted (limit {quota})");
                    return true;
                }
            }
            let delta = mutation.to_delta().expect("mutation lines carry a delta");
            match shared.apply(&delta) {
                Ok(report) => {
                    stats.deltas += 1;
                    let _ = writeln!(reply, "delta: {report}");
                    let _ = writeln!(reply, "done: epoch={}", report.epoch);
                }
                Err(e) => {
                    stats.rejections += 1;
                    state.counters.errors_sent.fetch_add(1, Ordering::Relaxed);
                    let _ = writeln!(reply, "error: {e}");
                }
            }
            false
        }
        Err(e) => {
            // A malformed line is the same diagnostic the local batch
            // drivers print — and, like the interactive shell, it does not
            // cost the client its connection.
            stats.rejections += 1;
            state.counters.errors_sent.fetch_add(1, Ordering::Relaxed);
            let _ = writeln!(reply, "error: {e}");
            false
        }
    }
}

/// Bounded exponential backoff with jitter for
/// [`Client::connect_with_retry`]. Retrying is opt-in: plain
/// [`Client::connect`] fails fast, exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total connection attempts, the first of which is immediate
    /// (clamped to at least 1).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles on each further retry.
    pub base_delay: Duration,
    /// Cap on any single backoff delay.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter. Give each client its own seed
    /// so a herd of rejected clients spreads out instead of retrying in
    /// lockstep; fix it in tests for reproducible schedules.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_secs(1),
            jitter_seed: 1,
        }
    }
}

/// One step of a xorshift64 generator — enough randomness for retry
/// jitter without pulling in a dependency.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

impl RetryPolicy {
    /// The jittered backoff before retry `n` (the first retry is `n = 1`):
    /// exponential `base_delay * 2^(n-1)` capped at `max_delay`, then
    /// jittered into `[delay/2, delay]` — "equal jitter", which keeps a
    /// floor under the backoff while decorrelating synchronized clients.
    pub fn delay_before(&self, retry: u32, rng: &mut u64) -> Duration {
        let doublings = retry.saturating_sub(1).min(20);
        let capped = self
            .base_delay
            .saturating_mul(1u32 << doublings)
            .min(self.max_delay);
        let half = capped / 2;
        let span = half.as_nanos().max(1) as u64;
        half + Duration::from_nanos(xorshift64(rng) % span)
    }
}

/// A blocking client for the wire protocol: one request line out, one
/// framed reply back. Used by the e2e tests, the CI smoke driver, and
/// `qld_bench::socket_load`.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    hello: Hello,
}

impl Client {
    /// Connects and reads the greeting. If the greeting announces
    /// `auth=required`, call [`Client::authenticate`] before anything
    /// else.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let _ = writer.set_nodelay(true);
        let mut reader = BufReader::new(writer.try_clone()?);
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                line.trim().to_string(),
            ));
        }
        // An over-capacity server sends `error: busy` instead of a
        // greeting — surface that as a connection error.
        let hello = Hello::parse(&line).ok_or_else(|| {
            io::Error::new(io::ErrorKind::ConnectionRefused, line.trim().to_string())
        })?;
        Ok(Client {
            writer,
            reader,
            hello,
        })
    }

    /// [`Client::connect`] with bounded exponential backoff: retries
    /// connections that fail with [`io::ErrorKind::ConnectionRefused`] —
    /// which covers both a TCP-level refusal (server not up yet) and an
    /// `error: busy` greeting from an over-capacity server (mapped to
    /// `ConnectionRefused` by `connect`). Any other error, including
    /// exhausting the attempt budget, is returned immediately.
    pub fn connect_with_retry<A: ToSocketAddrs>(
        addr: A,
        policy: RetryPolicy,
    ) -> io::Result<Client> {
        let mut rng = policy.jitter_seed | 1;
        let mut last = None;
        for retry in 0..policy.attempts.max(1) {
            if retry > 0 {
                thread::sleep(policy.delay_before(retry, &mut rng));
            }
            match Client::connect(&addr) {
                Ok(client) => return Ok(client),
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// The greeting the server sent on connect.
    pub fn hello(&self) -> Hello {
        self.hello
    }

    /// Sets (or clears, with `None`) the socket read/write timeout for
    /// every subsequent request. By default a client blocks forever
    /// waiting for a reply; with a timeout set, a wedged or partitioned
    /// server surfaces as [`io::ErrorKind::TimedOut`] with a diagnostic
    /// that says so — distinct from the `UnexpectedEof` "server closed
    /// the connection" error a disconnect produces. After a timeout the
    /// reply framing is unsynchronized: drop the client and reconnect.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_write_timeout(timeout)?;
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Performs the `auth <token>` handshake.
    pub fn authenticate(&mut self, token: &str) -> io::Result<Reply> {
        self.request(&format!("auth {token}"))
    }

    /// Sends one script line and reads the full reply frame. An
    /// `error:`-terminated reply is `Ok` with [`Reply::error`] set; `Err`
    /// means the transport itself failed (including the server closing
    /// the connection mid-reply).
    pub fn request(&mut self, line: &str) -> io::Result<Reply> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> io::Result<Reply> {
        let mut reply = Reply::default();
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-reply",
                    ));
                }
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "server reply timed out (see Client::set_timeout); the connection \
                         is unsynchronized — reconnect before retrying",
                    ));
                }
                Err(e) => return Err(e),
            }
            if reply.push_line(&line) {
                return Ok(reply);
            }
        }
    }

    /// Sends `:quit` and consumes the client (the server closes the
    /// connection after the ack).
    pub fn quit(mut self) -> io::Result<Reply> {
        self.request(":quit")
    }

    /// Sends `:shutdown`: the ack comes back, then the whole server
    /// drains and stops.
    pub fn shutdown_server(&mut self) -> io::Result<Reply> {
        self.request(":shutdown")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_core::CwDatabase;
    use qld_engine::Engine;
    use qld_logic::Vocabulary;

    fn shared() -> SharedEngine {
        let mut voc = Vocabulary::new();
        let ids = voc.add_consts(["a", "b", "c"]).unwrap();
        let p = voc.add_pred("P", 1).unwrap();
        let db = CwDatabase::builder(voc).fact(p, &[ids[0]]).build().unwrap();
        SharedEngine::new(Engine::new(db))
    }

    fn start(config: ServerConfig) -> (RunningServer, SocketAddr) {
        let server = Server::bind(shared(), config).unwrap();
        let addr = server.local_addr().unwrap();
        (server.spawn().unwrap(), addr)
    }

    #[test]
    fn round_trip_query_delta_stats_quit() {
        let (running, addr) = start(ServerConfig::default());
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.hello().epoch, 0);
        assert!(!client.hello().auth_required);

        let reply = client.request("(x) . P(x)").unwrap();
        assert!(reply.is_ok(), "{reply:?}");
        assert_eq!(reply.answers, vec!["(a)"]);
        assert_eq!(reply.epoch, Some(0));
        assert!(reply.evidence.as_deref().unwrap().contains("epoch 0"));

        let reply = client.request(":insert P(b)").unwrap();
        assert!(reply.is_ok(), "{reply:?}");
        assert_eq!(reply.epoch, Some(1));
        assert!(reply
            .delta
            .as_deref()
            .unwrap()
            .contains("1 fact(s) inserted"));

        let reply = client.request("(x) . P(x)").unwrap();
        assert_eq!(reply.answers.len(), 2);
        assert_eq!(reply.epoch, Some(1));

        let reply = client.request(":stats").unwrap();
        assert!(
            reply
                .stats
                .iter()
                .any(|s| s.starts_with("connection: 2 query(s)")),
            "{reply:?}"
        );
        assert!(
            reply.stats.iter().any(|s| s.contains("1 delta(s) applied")),
            "{reply:?}"
        );
        assert!(
            reply
                .stats
                .iter()
                .any(|s| s.starts_with("snapshot: epoch 1")),
            "{reply:?}"
        );

        let reply = client.quit().unwrap();
        assert!(reply.is_ok());
        running.shutdown().unwrap();
    }

    #[test]
    fn script_errors_keep_the_connection_open() {
        let (running, addr) = start(ServerConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let reply = client.request("NOPE(").unwrap();
        assert!(
            reply.error.as_deref().unwrap().starts_with("parse error"),
            "{reply:?}"
        );
        let reply = client.request(":mode exact").unwrap();
        assert!(reply
            .error
            .as_deref()
            .unwrap()
            .contains("not available in script mode"));
        // Still alive and serving.
        let reply = client.request("P(a)").unwrap();
        assert_eq!(reply.answers, vec!["CERTAIN"]);
        running.shutdown().unwrap();
    }

    #[test]
    fn auth_gate_rejects_and_admits() {
        let (running, addr) = start(ServerConfig {
            auth_token: Some("sesame".to_string()),
            ..ServerConfig::default()
        });
        // Wrong first request: closed.
        let mut client = Client::connect(addr).unwrap();
        assert!(client.hello().auth_required);
        let reply = client.request("P(a)").unwrap();
        assert!(
            reply.error.as_deref().unwrap().starts_with("auth:"),
            "{reply:?}"
        );
        assert!(
            client.request("P(a)").is_err(),
            "connection should be closed"
        );
        // Wrong token: closed.
        let mut client = Client::connect(addr).unwrap();
        let reply = client.authenticate("mellon").unwrap();
        assert!(!reply.is_ok());
        // Right token: served.
        let mut client = Client::connect(addr).unwrap();
        let reply = client.authenticate("sesame").unwrap();
        assert!(reply.is_ok(), "{reply:?}");
        let reply = client.request("P(a)").unwrap();
        assert_eq!(reply.answers, vec!["CERTAIN"]);
        running.shutdown().unwrap();
    }

    /// A raw socket speaking bytes, for malformed-frame tests the
    /// well-behaved [`Client`] cannot produce.
    fn raw_connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut greeting = String::new();
        reader.read_line(&mut greeting).unwrap();
        assert!(greeting.starts_with("hello:"), "{greeting}");
        (stream, reader)
    }

    fn read_line_from(reader: &mut BufReader<TcpStream>) -> String {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    }

    #[test]
    fn invalid_utf8_is_refused_and_the_connection_survives() {
        let (running, addr) = start(ServerConfig::default());
        let (mut stream, mut reader) = raw_connect(addr);

        stream.write_all(b"\xff\xfe bogus bytes \x80\n").unwrap();
        let reply = read_line_from(&mut reader);
        assert!(
            reply.starts_with("error: protocol: request line is not valid UTF-8"),
            "{reply}"
        );

        // The newline framed the garbage, so the connection still works.
        stream.write_all(b"P(a)\n").unwrap();
        let reply = read_line_from(&mut reader);
        assert!(reply.starts_with("answer: CERTAIN"), "{reply}");

        // The refusal is counted and visible in the wire stats.
        stream.write_all(b":stats\n").unwrap();
        loop {
            let line = read_line_from(&mut reader);
            if line.starts_with("stat: server:") {
                assert!(line.contains("1 protocol error(s)"), "{line}");
            }
            if line.starts_with("done:") {
                break;
            }
        }
        running.shutdown().unwrap();
    }

    #[test]
    fn overlong_request_line_is_refused_and_closed() {
        let (running, addr) = start(ServerConfig::default());
        let (mut stream, mut reader) = raw_connect(addr);

        // 80 KiB of 'a' without a newline: past the cap the server
        // refuses and hangs up — it must not buffer without bound.
        let blob = vec![b'a'; 80 * 1024];
        // The server may close mid-write; that is the point.
        let _ = stream.write_all(&blob);
        let _ = stream.write_all(b"\n");
        let reply = read_line_from(&mut reader);
        assert!(
            reply.starts_with("error: protocol: request line exceeds"),
            "{reply}"
        );
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap_or(0), 0, "{rest}");
        running.shutdown().unwrap();
    }

    #[test]
    fn binary_garbage_never_panics_or_wedges_the_server() {
        let (running, addr) = start(ServerConfig::default());
        // A battery of hostile frames, each on a fresh connection: ASCII
        // control soup, truncated UTF-8 multibyte heads, NULs, a
        // zero-length line, a lone carriage return, and overlong UTF-8.
        let frames: &[&[u8]] = &[
            b"\x00\x01\x02\x03\n",
            b"\xc3(\n",
            b"\xe2\x82\n",
            b"\xf0\x9f\x92\n",
            b"\n",
            b"\r\n",
            b"\xc0\xaf\n",
            b"\xed\xa0\x80\n",
        ];
        for frame in frames {
            let (mut stream, mut reader) = raw_connect(addr);
            stream.write_all(frame).unwrap();
            let reply = read_line_from(&mut reader);
            // Every frame gets exactly one terminator line back: either
            // a protocol/script error or a blank-line ack.
            assert!(
                reply.starts_with("error:") || reply.starts_with("done:"),
                "frame {frame:?} got {reply}"
            );
            // And the connection is still in sync afterwards.
            stream.write_all(b"P(a)\n").unwrap();
            let reply = read_line_from(&mut reader);
            assert!(
                reply.starts_with("answer: CERTAIN"),
                "frame {frame:?} wedged the connection: {reply}"
            );
        }
        running.shutdown().unwrap();
    }

    #[test]
    fn retry_delays_grow_exponentially_and_cap_with_jitter() {
        let policy = RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(60),
            jitter_seed: 42,
        };
        let mut rng = policy.jitter_seed | 1;
        // Uncapped: 10, 20, 40; capped at 60 from retry 4 on. Jitter
        // keeps each delay within [capped/2, capped].
        for (retry, capped_ms) in [(1, 10), (2, 20), (3, 40), (4, 60), (5, 60), (10, 60)] {
            let d = policy.delay_before(retry, &mut rng);
            let capped = Duration::from_millis(capped_ms);
            assert!(d >= capped / 2 && d <= capped, "retry {retry}: {d:?}");
        }
        // Two different seeds give different schedules (decorrelation).
        let (mut a, mut b) = (3u64, 4u64);
        let schedule = |rng: &mut u64| {
            (1..=4)
                .map(|r| policy.delay_before(r, rng))
                .collect::<Vec<_>>()
        };
        assert_ne!(schedule(&mut a), schedule(&mut b));
    }

    #[test]
    fn connect_with_retry_rides_out_a_busy_server() {
        // Capacity 1: the parked client makes every new connection get
        // `error: busy` until it quits.
        let (running, addr) = start(ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        });
        let parked = Client::connect(addr).unwrap();
        assert!(
            Client::connect(addr).is_err(),
            "fail-fast connect should see busy"
        );
        let unparker = thread::spawn(move || {
            thread::sleep(Duration::from_millis(60));
            parked.quit().unwrap();
        });
        let policy = RetryPolicy {
            attempts: 50,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(40),
            jitter_seed: 7,
        };
        let mut client = Client::connect_with_retry(addr, policy).expect("retry should win");
        let reply = client.request("P(a)").unwrap();
        assert_eq!(reply.answers, vec!["CERTAIN"]);
        unparker.join().unwrap();
        running.shutdown().unwrap();
    }

    #[test]
    fn connect_with_retry_gives_up_when_nothing_listens() {
        // Bind-then-drop: the ephemeral port is free again, so every
        // attempt is refused at the TCP level.
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let policy = RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            jitter_seed: 9,
        };
        let err = Client::connect_with_retry(addr, policy).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        let (running, addr) = start(ServerConfig::default());
        let mut client = Client::connect(addr).unwrap();
        let reply = client.shutdown_server().unwrap();
        assert!(reply.is_ok());
        // The accept loop drains and run() returns on its own.
        running.join().unwrap();
    }
}
