//! The wire protocol: newline-delimited UTF-8 frames over TCP.
//!
//! # Grammar
//!
//! On connect the server sends one greeting line:
//!
//! ```text
//! hello: qld <version> epoch=<N> auth=<required|open>
//! ```
//!
//! Each **request** is one script line (see [`crate::script`]):
//! a query, `:insert …`, `:assert-ne …`, `:stats`, `:quit`, `:shutdown`,
//! the admin verbs `:promote` (turn a follower into a writable primary)
//! and `:follow epoch=<E> generation=<G>` (switch the connection into a
//! replication feed — see [`crate::replication`]), or — when the server
//! was started with a token — the `auth <token>` handshake, which must
//! come first.
//!
//! Each **reply** is zero or more tagged data lines followed by exactly
//! one terminator line, so the client always knows where a reply ends:
//!
//! ```text
//! answer: (plato, aristotle)      -- one per tuple (open query)
//! answer: CERTAIN                 -- or one verdict (boolean query)
//! evidence: auto → §5 approx, exact (Theorem 13), epoch 3 in 12.3µs
//! delta: 1 fact(s) inserted (0 duplicate), …   -- mutation replies
//! stat: …                         -- :stats replies
//! promoted: generation=<G>        -- :promote replies
//! done: epoch=<N>                 -- success terminator
//! error: <diagnostic>             -- failure terminator
//! ```
//!
//! The epoch on `done:` is the consistency contract: for a query it is
//! the epoch of the snapshot that produced the tuples (identical to the
//! epoch inside the `evidence:` line), for a mutation the epoch the
//! delta published, for everything else the currently published epoch.
//! Failure diagnostics are namespaced: `error: auth: …`,
//! `error: quota: …`, `error: busy: …`, and `error: timeout: …` are
//! connection-level (the server closes the connection after sending
//! them); `error: protocol: …` marks a malformed frame at the transport
//! layer (an over-long request line closes the connection; a complete
//! but non-UTF-8 line is refused and the connection stays usable);
//! every other `error:` carries a script/engine diagnostic and leaves
//! the connection open.

use qld_engine::{Answers, Evidence, Semantics};
use qld_logic::Vocabulary;

/// Protocol version in the greeting; bump on incompatible changes.
pub const PROTOCOL_VERSION: u32 = 1;

/// The boolean-query verdict word (shared by the CLI and the wire, so a
/// remote answer renders identically to a local one).
pub fn verdict(mode: Semantics, holds: bool) -> &'static str {
    match (mode, holds) {
        (Semantics::Possible, true) => "POSSIBLE",
        (Semantics::Possible, false) => "impossible",
        (_, true) => "CERTAIN",
        (_, false) => "not certain",
    }
}

/// Answer tuples rendered with the vocabulary's constant names, one
/// `(c1, ..., ck)` string per tuple.
pub fn tuple_lines(voc: &Vocabulary, answers: &Answers) -> Vec<String> {
    qld_core::answer_names(voc, answers.tuples())
        .into_iter()
        .map(|tuple| format!("({})", tuple.join(", ")))
        .collect()
}

/// The payload of an `answer:` reply: verdict word for a boolean query,
/// one line per tuple otherwise.
pub fn answer_lines(
    voc: &Vocabulary,
    mode: Semantics,
    is_boolean: bool,
    answers: &Answers,
) -> Vec<String> {
    if is_boolean {
        vec![verdict(mode, answers.holds()).to_string()]
    } else {
        tuple_lines(voc, answers)
    }
}

/// The evidence tag printed after every answer (regime, certificate,
/// epoch, elapsed time).
pub fn evidence_tag(evidence: &Evidence) -> String {
    format!("{} in {:.2?}", evidence.summary(), evidence.elapsed)
}

/// The server greeting, as parsed by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version announced by the server.
    pub version: u32,
    /// The epoch published when the connection was accepted.
    pub epoch: u64,
    /// Whether the server demands an `auth <token>` handshake first.
    pub auth_required: bool,
}

impl Hello {
    /// Renders the greeting line.
    pub fn render(&self) -> String {
        format!(
            "hello: qld {} epoch={} auth={}",
            self.version,
            self.epoch,
            if self.auth_required {
                "required"
            } else {
                "open"
            }
        )
    }

    /// Parses a greeting line (`None` if it is not a valid greeting).
    pub fn parse(line: &str) -> Option<Hello> {
        let rest = line.trim().strip_prefix("hello: qld ")?;
        let mut words = rest.split_whitespace();
        let version = words.next()?.parse().ok()?;
        let epoch = words.next()?.strip_prefix("epoch=")?.parse().ok()?;
        let auth_required = match words.next()?.strip_prefix("auth=")? {
            "required" => true,
            "open" => false,
            _ => return None,
        };
        Some(Hello {
            version,
            epoch,
            auth_required,
        })
    }
}

/// One parsed reply, accumulated by the client until the terminator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Reply {
    /// `answer:` payloads (tuples or a verdict word).
    pub answers: Vec<String>,
    /// The `evidence:` tag, if the request was a query.
    pub evidence: Option<String>,
    /// The `delta:` report, if the request was a mutation.
    pub delta: Option<String>,
    /// `stat:` lines, if the request was `:stats`.
    pub stats: Vec<String>,
    /// The new generation from a `promoted:` line, if the request was
    /// `:promote`.
    pub promoted: Option<u64>,
    /// The epoch stamped on the `done:` terminator.
    pub epoch: Option<u64>,
    /// The diagnostic from an `error:` terminator.
    pub error: Option<String>,
}

impl Reply {
    /// Whether the reply terminated with `done:` (no error).
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// Folds one reply line in; returns `true` when the line terminated
    /// the reply (`done:` or `error:`).
    pub fn push_line(&mut self, line: &str) -> bool {
        let line = line.trim_end_matches(['\r', '\n']);
        if let Some(rest) = line.strip_prefix("answer: ") {
            self.answers.push(rest.to_string());
        } else if let Some(rest) = line.strip_prefix("evidence: ") {
            self.evidence = Some(rest.to_string());
        } else if let Some(rest) = line.strip_prefix("delta: ") {
            self.delta = Some(rest.to_string());
        } else if let Some(rest) = line.strip_prefix("stat: ") {
            self.stats.push(rest.to_string());
        } else if let Some(rest) = line.strip_prefix("promoted:") {
            self.promoted = rest
                .split_whitespace()
                .find_map(|w| w.strip_prefix("generation=").and_then(|g| g.parse().ok()));
        } else if let Some(rest) = line.strip_prefix("done:") {
            self.epoch = rest
                .split_whitespace()
                .find_map(|w| w.strip_prefix("epoch=").and_then(|e| e.parse().ok()));
            return true;
        } else if let Some(rest) = line.strip_prefix("error: ") {
            self.error = Some(rest.to_string());
            return true;
        }
        // Unknown tags are skipped (forward compatibility).
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrips() {
        for hello in [
            Hello {
                version: 1,
                epoch: 0,
                auth_required: false,
            },
            Hello {
                version: 1,
                epoch: 42,
                auth_required: true,
            },
        ] {
            assert_eq!(Hello::parse(&hello.render()), Some(hello));
        }
        assert_eq!(Hello::parse("hi there"), None);
        assert_eq!(Hello::parse("hello: qld x epoch=0 auth=open"), None);
    }

    #[test]
    fn reply_accumulates_until_terminator() {
        let mut reply = Reply::default();
        assert!(!reply.push_line("answer: (plato)"));
        assert!(!reply.push_line("answer: (aristotle)"));
        assert!(!reply.push_line("evidence: auto, epoch 3 in 1.00µs"));
        assert!(!reply.push_line("mystery: ignored"));
        assert!(reply.push_line("done: epoch=3"));
        assert!(reply.is_ok());
        assert_eq!(reply.epoch, Some(3));
        assert_eq!(reply.answers.len(), 2);
        assert!(reply.evidence.as_deref().unwrap().contains("epoch 3"));

        let mut err = Reply::default();
        assert!(err.push_line("error: quota: query quota exhausted (limit 2)"));
        assert!(!err.is_ok());
        assert!(err.error.as_deref().unwrap().starts_with("quota:"));

        let mut promoted = Reply::default();
        assert!(!promoted.push_line("promoted: generation=7"));
        assert!(promoted.push_line("done: epoch=12"));
        assert_eq!(promoted.promoted, Some(7));
        assert_eq!(promoted.epoch, Some(12));
    }

    #[test]
    fn verdict_words_cover_the_modes() {
        assert_eq!(verdict(Semantics::Auto, true), "CERTAIN");
        assert_eq!(verdict(Semantics::Exact, false), "not certain");
        assert_eq!(verdict(Semantics::Possible, true), "POSSIBLE");
        assert_eq!(verdict(Semantics::Possible, false), "impossible");
    }
}
