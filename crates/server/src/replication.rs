//! Primary/follower streaming replication over the wire protocol.
//!
//! # Feed protocol
//!
//! A follower opens an ordinary client connection (greeting + optional
//! `auth`), then switches it into a **replication feed** with one
//! handshake line:
//!
//! ```text
//! :follow epoch=<E> generation=<G>     -- resume after epoch E
//! :follow bootstrap generation=<G>     -- fresh follower, no usable state
//! ```
//!
//! The primary answers with its own term and epoch — or refuses:
//!
//! ```text
//! feed: generation=<Gp> epoch=<Ep>
//! error: fenced: <diagnostic>          -- the *primary* is stale (G > Gp)
//! ```
//!
//! then one catch-up header:
//!
//! ```text
//! resume: epoch=<E>                    -- incremental records follow
//! snapshot: epoch=<Ep> bytes=<N>       -- N bytes of database text follow
//! ```
//!
//! and finally a continuous stream of **binary WAL frames** (the exact
//! `[len][crc][payload]` framing of [`qld_wal`] segments, see
//! [`WalRecord::encode_frame`]) — first any log-tail records needed to
//! catch up, then every delta as it commits. Frames with no facts and no
//! `NE` pairs are heartbeats carrying the primary's current epoch; the
//! follower uses them to measure replication lag and never applies them.
//!
//! # Epoch-resume rules
//!
//! The primary serves incrementally iff its newest WAL checkpoint is at
//! or below the follower's epoch (the truncated log still covers the
//! gap); otherwise it transfers the published snapshot's database text.
//! The follower applies a record at exactly `current + 1`, skips records
//! at or below its epoch (the tail and the live stream may overlap), and
//! treats anything further ahead as a gap: it drops the connection and
//! reconnects, resuming from its last applied epoch. Reconnection uses
//! the same [`RetryPolicy`] backoff as clients, forever — a follower
//! outlives any primary outage.
//!
//! # Generation fencing
//!
//! Both sides carry a generation (failover term). `qld promote` bumps
//! the follower's generation and checkpoints it into the WAL header, so
//! after a failover the old primary's feed — still serving the previous
//! term — is refused by every re-pointed follower (`Gp < G`), and the
//! old primary refuses followers from the future (`G > Gp`) instead of
//! feeding them a stale history.
//!
//! Because `Engine::apply` is deterministic, a follower that has applied
//! the epoch-ordered stream answers byte-identically to a solo engine
//! rebuilt at the same epoch — `tests/replication.rs` asserts exactly
//! that, across all four semantics.

use crate::proto::Hello;
use crate::{RetryPolicy, ServerState, POLL_TICK};
use qld_core::CwDatabase;
use qld_engine::{Engine, SharedEngine};
use qld_wal::{WalRecord, MAX_RECORD_BYTES};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often an idle feed sends a heartbeat frame (empty record at the
/// primary's current epoch). Followers use it for lag accounting and as
/// a liveness signal; a dead follower is detected by the write failing.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);

/// Longest accepted protocol line on the follower side of the feed.
const MAX_FEED_LINE: usize = 64 * 1024;

/// The parsed `:follow` handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FollowRequest {
    /// The follower's last applied epoch; `None` means bootstrap — the
    /// follower has no usable state and needs a snapshot transfer.
    pub epoch: Option<u64>,
    /// The follower's generation (highest failover term it has served
    /// under or adopted).
    pub generation: u64,
}

impl FollowRequest {
    /// Renders the handshake line.
    pub fn render(&self) -> String {
        match self.epoch {
            Some(epoch) => format!(":follow epoch={epoch} generation={}", self.generation),
            None => format!(":follow bootstrap generation={}", self.generation),
        }
    }

    /// Parses a `:follow …` request line (`None` if malformed).
    pub fn parse(line: &str) -> Option<FollowRequest> {
        let rest = line.trim().strip_prefix(":follow")?.trim();
        let mut epoch = None;
        let mut bootstrap = false;
        let mut generation = None;
        for word in rest.split_whitespace() {
            if word == "bootstrap" {
                bootstrap = true;
            } else if let Some(e) = word.strip_prefix("epoch=") {
                epoch = Some(e.parse().ok()?);
            } else if let Some(g) = word.strip_prefix("generation=") {
                generation = Some(g.parse().ok()?);
            } else {
                return None;
            }
        }
        if bootstrap == epoch.is_some() {
            return None; // exactly one of `bootstrap` / `epoch=` required
        }
        Some(FollowRequest {
            epoch,
            generation: generation?,
        })
    }
}

/// Decrements the primary's follower gauge when the feed ends, however
/// it ends.
struct FeedGuard<'a>(&'a SharedEngine);

impl Drop for FeedGuard<'_> {
    fn drop(&mut self) {
        self.0.follower_detached();
    }
}

/// Serves one replication feed on a connection that sent `:follow …`.
/// Runs until the follower disconnects (write failure), the server
/// shuts down, or the handshake is refused; the connection closes
/// afterwards either way.
pub(crate) fn serve_feed(
    request: &str,
    writer: &mut TcpStream,
    shared: &SharedEngine,
    state: &ServerState,
) -> io::Result<()> {
    let Some(follow) = FollowRequest::parse(request) else {
        state.counters.errors_sent.fetch_add(1, Ordering::Relaxed);
        writeln!(
            writer,
            "error: protocol: malformed handshake (use `:follow epoch=<E> generation=<G>` \
             or `:follow bootstrap generation=<G>`)"
        )?;
        return Ok(());
    };
    let generation = shared.generation();
    if follow.generation > generation {
        // This primary's term is over: a follower from the future means
        // someone was promoted past us. Refuse rather than feeding it a
        // history the new primary has diverged from.
        state.counters.errors_sent.fetch_add(1, Ordering::Relaxed);
        writeln!(
            writer,
            "error: fenced: follower is at generation {} but this primary serves \
             generation {generation}; it has been superseded",
            follow.generation
        )?;
        return Ok(());
    }

    shared.follower_attached();
    let _guard = FeedGuard(shared);

    // Subscribe *before* deciding how to catch up: the subscription
    // snapshot and the commit feed are atomic (no record can fall
    // between them), so tail records + feed records cover everything
    // after the follower's epoch, with overlaps handled by the
    // follower's skip rule.
    let (snapshot, feed) = shared.subscribe_commits();
    writeln!(
        writer,
        "feed: generation={generation} epoch={}",
        snapshot.epoch()
    )?;

    let resume_from = match follow.epoch {
        Some(epoch) if epoch >= snapshot.epoch() => Some((epoch, Vec::new())),
        Some(epoch) => match shared.wal_tail() {
            // The log tail reaches back far enough: replay it.
            Ok(Some((checkpoint_epoch, records))) if checkpoint_epoch <= epoch => {
                Some((epoch, records))
            }
            // No WAL, a truncated log, or a tail read failure: fall back
            // to a full snapshot transfer.
            _ => None,
        },
        None => None,
    };
    match resume_from {
        Some((epoch, records)) => {
            writeln!(writer, "resume: epoch={epoch}")?;
            for record in records.iter().filter(|r| r.epoch > epoch) {
                writer.write_all(&record.encode_frame())?;
            }
        }
        None => {
            let text = qld_core::textio::to_text(snapshot.engine().db());
            writeln!(
                writer,
                "snapshot: epoch={} bytes={}",
                snapshot.epoch(),
                text.len()
            )?;
            writer.write_all(text.as_bytes())?;
        }
    }

    let mut last_send = Instant::now();
    loop {
        if state.shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        match feed.recv_timeout(POLL_TICK) {
            Ok(record) => {
                writer.write_all(&record.encode_frame())?;
                last_send = Instant::now();
            }
            Err(RecvTimeoutError::Timeout) => {
                if last_send.elapsed() >= HEARTBEAT_EVERY {
                    let heartbeat = WalRecord {
                        epoch: shared.epoch(),
                        facts: Vec::new(),
                        ne_pairs: Vec::new(),
                    };
                    writer.write_all(&heartbeat.encode_frame())?;
                    last_send = Instant::now();
                }
            }
            Err(RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

/// How an engine for a transferred snapshot database is built — the
/// follower's equivalent of the `build` closure
/// [`SharedEngine::recover_with`] takes (semantics, parallelism, cache
/// configuration).
pub type BuildEngine = Arc<dyn Fn(CwDatabase) -> Engine + Send + Sync>;

/// A configured-but-not-yet-running follower connection: which primary
/// to stream from, how to authenticate, and how hard to retry.
///
/// Construction marks the engine read-only; [`FollowerLink::spawn`]
/// starts the apply loop. The loop reconnects with [`RetryPolicy`]
/// backoff forever (the `attempts` budget caps the *backoff growth*,
/// not the retries), resuming from the last applied epoch, and exits
/// when the handle is stopped or the engine stops being read-only —
/// i.e. after a promote.
pub struct FollowerLink {
    shared: SharedEngine,
    primary: String,
    token: Option<String>,
    retry: RetryPolicy,
    build: BuildEngine,
    synced: AtomicBool,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for FollowerLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FollowerLink")
            .field("primary", &self.primary)
            .field("synced", &self.synced)
            .finish_non_exhaustive()
    }
}

impl FollowerLink {
    /// Prepares `shared` to follow `primary`: marks it read-only and
    /// remembers the connection parameters. `build` configures the
    /// engine for a transferred snapshot database, exactly like the
    /// closure [`SharedEngine::recover_with`] takes.
    pub fn new(
        shared: SharedEngine,
        primary: impl Into<String>,
        token: Option<String>,
        retry: RetryPolicy,
        build: BuildEngine,
    ) -> FollowerLink {
        shared.set_read_only(true);
        // A follower that already holds state (recovered from its own
        // WAL) resumes from its epoch; a fresh epoch-0 placeholder must
        // bootstrap, because its database need not share the primary's
        // vocabulary until a snapshot lands.
        let synced = AtomicBool::new(shared.epoch() > 0);
        FollowerLink {
            shared,
            primary: primary.into(),
            token,
            retry,
            build,
            synced,
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Starts the apply loop on its own thread.
    pub fn spawn(self) -> FollowerHandle {
        let stop = self.stop.clone();
        let shared = self.shared.clone();
        let thread = thread::Builder::new()
            .name("qld-follower".to_string())
            .spawn(move || self.run())
            .expect("spawn follower thread");
        FollowerHandle {
            stop,
            shared,
            thread,
        }
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire) || !self.shared.is_read_only()
    }

    fn run(self) {
        let mut rng = self.retry.jitter_seed | 1;
        let mut failures: u32 = 0;
        while !self.stopped() {
            match self.feed_once() {
                Ok(()) => break,
                Err(_) => failures = failures.saturating_add(1),
            }
            if self.stopped() {
                break;
            }
            // Backoff, polling the stop flag so promotion/shutdown never
            // waits out a long delay.
            let backoff = self
                .retry
                .delay_before(failures.min(self.retry.attempts.max(1)), &mut rng);
            let waited_until = Instant::now() + backoff;
            while Instant::now() < waited_until && !self.stopped() {
                thread::sleep(POLL_TICK.min(backoff));
            }
        }
    }

    /// One connection lifetime: connect, handshake, catch up, apply the
    /// stream until it breaks or a stop is requested.
    fn feed_once(&self) -> io::Result<()> {
        let stream = TcpStream::connect(&self.primary)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(POLL_TICK))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let stop = || self.stopped();

        // Greeting, then auth if the primary demands it.
        let Some(line) = read_feed_line(&mut reader, &stop)? else {
            return Ok(());
        };
        let hello = Hello::parse(&line)
            .ok_or_else(|| feed_err(format!("unexpected greeting: {}", line.trim())))?;
        if hello.auth_required {
            let token = self.token.as_deref().ok_or_else(|| {
                feed_err("primary requires auth and no --token was configured".to_string())
            })?;
            writeln!(writer, "auth {token}")?;
            let Some(line) = read_feed_line(&mut reader, &stop)? else {
                return Ok(());
            };
            if !line.starts_with("done:") {
                return Err(feed_err(format!("auth refused: {}", line.trim())));
            }
        }

        // Handshake.
        let request = FollowRequest {
            epoch: self
                .synced
                .load(Ordering::Acquire)
                .then(|| self.shared.epoch()),
            generation: self.shared.generation(),
        };
        writeln!(writer, "{}", request.render())?;
        let Some(line) = read_feed_line(&mut reader, &stop)? else {
            return Ok(());
        };
        let line = line.trim();
        let Some(rest) = line.strip_prefix("feed:") else {
            // `error: fenced: …` and every other refusal lands here.
            return Err(feed_err(format!("feed refused: {line}")));
        };
        let mut feed_generation = None;
        let mut feed_epoch = None;
        for word in rest.split_whitespace() {
            if let Some(g) = word.strip_prefix("generation=") {
                feed_generation = g.parse::<u64>().ok();
            } else if let Some(e) = word.strip_prefix("epoch=") {
                feed_epoch = e.parse::<u64>().ok();
            }
        }
        let (feed_generation, feed_epoch) = match (feed_generation, feed_epoch) {
            (Some(g), Some(e)) => (g, e),
            _ => return Err(feed_err(format!("malformed feed header: {line}"))),
        };
        if feed_generation < self.shared.generation() {
            // Fencing, follower side: this primary's term predates ours
            // (we were promoted, or follow a newer primary's history).
            return Err(feed_err(format!(
                "fenced: primary serves generation {feed_generation} but this follower \
                 is at generation {}; refusing its stale stream",
                self.shared.generation()
            )));
        }
        self.shared.set_generation(feed_generation);
        self.shared.note_source_epoch(feed_epoch);

        // Catch-up header.
        let Some(line) = read_feed_line(&mut reader, &stop)? else {
            return Ok(());
        };
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("snapshot:") {
            let mut epoch = None;
            let mut bytes = None;
            for word in rest.split_whitespace() {
                if let Some(e) = word.strip_prefix("epoch=") {
                    epoch = e.parse::<u64>().ok();
                } else if let Some(b) = word.strip_prefix("bytes=") {
                    bytes = b.parse::<usize>().ok();
                }
            }
            let (epoch, bytes) = match (epoch, bytes) {
                (Some(e), Some(b)) => (e, b),
                _ => return Err(feed_err(format!("malformed snapshot header: {line}"))),
            };
            let mut text = vec![0u8; bytes];
            if !read_exact_polling(&mut reader, &mut text, &stop)? {
                return Ok(());
            }
            let text = String::from_utf8(text)
                .map_err(|_| feed_err("snapshot is not UTF-8 database text".to_string()))?;
            let db = qld_core::textio::from_text(&text)
                .map_err(|e| feed_err(format!("snapshot database invalid: {e}")))?;
            self.shared
                .reset_replica((self.build)(db), epoch)
                .map_err(|e| feed_err(e.to_string()))?;
            self.synced.store(true, Ordering::Release);
        } else if !line.starts_with("resume:") {
            return Err(feed_err(format!("unexpected catch-up header: {line}")));
        }

        // The stream: tail records, then live commits and heartbeats.
        loop {
            match read_frame(&mut reader, &stop)? {
                None => return Ok(()),
                Some(record) => {
                    let applied = !record.facts.is_empty() || !record.ne_pairs.is_empty();
                    self.shared
                        .apply_replica(&record)
                        .map_err(|e| feed_err(e.to_string()))?;
                    if applied {
                        self.synced.store(true, Ordering::Release);
                    }
                }
            }
        }
    }
}

/// Remote control for a spawned [`FollowerLink`].
#[derive(Debug)]
pub struct FollowerHandle {
    stop: Arc<AtomicBool>,
    shared: SharedEngine,
    thread: JoinHandle<()>,
}

impl FollowerHandle {
    /// The engine this follower maintains (read-only until promoted).
    pub fn shared(&self) -> &SharedEngine {
        &self.shared
    }

    /// Signals the apply loop to stop and waits for it to exit. Called
    /// automatically by promotion workflows: clearing the read-only flag
    /// (via [`SharedEngine::promote`]) also stops the loop at its next
    /// poll tick, so `stop` after a promote returns promptly.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Release);
        self.thread.join().expect("follower thread panicked");
    }
}

fn feed_err(message: String) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("replication: {message}"),
    )
}

/// Matches the error kinds a socket read timeout surfaces as.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one protocol line, polling `stop` across read-timeout ticks so
/// a waiting follower reacts to promotion/shutdown promptly. `Ok(None)`
/// means a stop was requested mid-line; EOF is an error (the feed never
/// ends cleanly from the primary side).
fn read_feed_line(
    reader: &mut BufReader<TcpStream>,
    stop: &dyn Fn() -> bool,
) -> io::Result<Option<String>> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (take, complete) = match reader.fill_buf() {
            Ok([]) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "primary closed the replication connection",
                ))
            }
            Ok(available) => {
                let newline = available.iter().position(|&b| b == b'\n');
                (
                    newline.map_or(available.len(), |i| i + 1),
                    newline.is_some(),
                )
            }
            Err(e) if is_timeout(&e) => {
                if stop() {
                    return Ok(None);
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buf.len() + take > MAX_FEED_LINE {
            return Err(feed_err("protocol line exceeds the line cap".to_string()));
        }
        buf.extend_from_slice(&reader.buffer()[..take]);
        reader.consume(take);
        if complete {
            return String::from_utf8(buf)
                .map(Some)
                .map_err(|_| feed_err("protocol line is not valid UTF-8".to_string()));
        }
    }
}

/// `read_exact` that survives read-timeout ticks (polling `stop`)
/// without losing already-read bytes. Returns `false` if a stop was
/// requested before the buffer filled.
fn read_exact_polling(
    reader: &mut BufReader<TcpStream>,
    buf: &mut [u8],
    stop: &dyn Fn() -> bool,
) -> io::Result<bool> {
    let mut at = 0;
    while at < buf.len() {
        match reader.read(&mut buf[at..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "primary closed the replication connection mid-frame",
                ))
            }
            Ok(n) => at += n,
            Err(e) if is_timeout(&e) => {
                if stop() {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one binary WAL frame off the feed. `Ok(None)` means a stop was
/// requested; a frame that fails its CRC is an error (the follower
/// reconnects and resyncs rather than guessing).
fn read_frame(
    reader: &mut BufReader<TcpStream>,
    stop: &dyn Fn() -> bool,
) -> io::Result<Option<WalRecord>> {
    let mut frame = vec![0u8; 8];
    if !read_exact_polling(reader, &mut frame, stop)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes"));
    if len > MAX_RECORD_BYTES {
        return Err(feed_err(format!("oversized frame ({len} bytes)")));
    }
    frame.resize(8 + len as usize, 0);
    if !read_exact_polling(reader, &mut frame[8..], stop)? {
        return Ok(None);
    }
    match WalRecord::decode_frame(&frame) {
        Some((record, consumed)) if consumed == frame.len() => Ok(Some(record)),
        _ => Err(feed_err("corrupt replication frame".to_string())),
    }
}

use std::io::Read as _;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn follow_handshake_round_trips() {
        for request in [
            FollowRequest {
                epoch: Some(17),
                generation: 3,
            },
            FollowRequest {
                epoch: None,
                generation: 0,
            },
        ] {
            assert_eq!(FollowRequest::parse(&request.render()), Some(request));
        }
        assert_eq!(
            FollowRequest::parse(":follow epoch=2 generation=1"),
            Some(FollowRequest {
                epoch: Some(2),
                generation: 1
            })
        );
        // Malformed: missing generation, both/neither of bootstrap+epoch,
        // stray words, non-numeric values.
        for bad in [
            ":follow",
            ":follow epoch=2",
            ":follow bootstrap",
            ":follow generation=1",
            ":follow bootstrap epoch=2 generation=1",
            ":follow epoch=x generation=1",
            ":follow epoch=2 generation=1 extra",
        ] {
            assert_eq!(FollowRequest::parse(bad), None, "{bad}");
        }
    }
}
