//! The `:batch` script dialect, parsed in exactly one place.
//!
//! Every front-end that accepts script lines — the single-owner
//! `--batch` driver, the concurrent `--sessions` driver, and the TCP
//! server — routes through [`parse_line`], so a malformed line produces
//! the same [`ScriptError`] diagnostic locally and over the wire. A
//! script line is one of:
//!
//! * a **query** in the surface syntax (`(x) . P(x, y)`, `forall y. …`);
//! * `:insert P(c1, ..., ck)` — a ground-atom fact delta;
//! * `:assert-ne <a> <b>` — a uniqueness-axiom delta;
//! * `:stats` — live epoch/cache/session counters;
//! * `:quit` (also `:q`, `:exit`) — end of script / close connection;
//! * `:shutdown` — stop the whole server (wire only; local drivers treat
//!   it like `:quit`);
//! * blank lines and `#` comments, which parse to nothing.

use qld_engine::Delta;
use qld_logic::parser::parse_query;
use qld_logic::{ConstId, Formula, PredId, Query, Term, Vocabulary};
use std::fmt;

/// One parsed script line.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptLine {
    /// A query to prepare and execute.
    Query(Query),
    /// `:insert P(c1, ..., ck)` — a fact delta.
    Insert(PredId, Vec<ConstId>),
    /// `:assert-ne a b` — a uniqueness-axiom delta.
    AssertNe(ConstId, ConstId),
    /// `:stats`.
    Stats,
    /// `:quit` — end of script (close the connection over the wire).
    Quit,
    /// `:shutdown` — stop the server (local drivers treat it as `:quit`).
    Shutdown,
}

impl ScriptLine {
    /// The [`Delta`] a mutation line applies (`None` for non-mutations).
    pub fn to_delta(&self) -> Option<Delta> {
        match self {
            ScriptLine::Insert(p, args) => Some(Delta::new().insert_fact(*p, args)),
            ScriptLine::AssertNe(a, b) => Some(Delta::new().assert_ne(*a, *b)),
            _ => None,
        }
    }
}

/// A malformed script line. The `Display` strings are the shared
/// diagnostics: local drivers print them prefixed `line {n}: `, the
/// server sends them prefixed `error: `.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptError {
    /// The query (or `:insert` atom) failed to parse.
    Parse(String),
    /// `:insert` got something other than a ground atom.
    NotAFact,
    /// A command was called with the wrong shape of arguments.
    Usage(&'static str),
    /// `:assert-ne` named a constant outside the vocabulary.
    UnknownConstant(String),
    /// A shell-only command (`:mode`, `:dump`, …) in a script.
    Unsupported(String),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Parse(e) => write!(f, "parse error: {e}"),
            ScriptError::NotAFact => {
                write!(f, "a fact is a ground atom: :insert P(c1, ..., ck)")
            }
            ScriptError::Usage(usage) => write!(f, "usage: {usage}"),
            ScriptError::UnknownConstant(c) => write!(f, "unknown constant `{c}`"),
            ScriptError::Unsupported(cmd) => write!(
                f,
                "`:{cmd}` is not available in script mode \
                 (only :insert, :assert-ne, :stats, :quit)"
            ),
        }
    }
}

impl std::error::Error for ScriptError {}

/// Parses one script line. `Ok(None)` is a blank line or comment.
pub fn parse_line(voc: &Vocabulary, raw: &str) -> Result<Option<ScriptLine>, ScriptError> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let Some(cmd) = line.strip_prefix(':') else {
        let query = parse_query(voc, line).map_err(|e| ScriptError::Parse(e.to_string()))?;
        return Ok(Some(ScriptLine::Query(query)));
    };
    let cmd = cmd.trim();
    match cmd.split_whitespace().next().unwrap_or("") {
        "stats" => Ok(Some(ScriptLine::Stats)),
        "quit" | "q" | "exit" => Ok(Some(ScriptLine::Quit)),
        "shutdown" => Ok(Some(ScriptLine::Shutdown)),
        "insert" => {
            let rest = cmd["insert".len()..].trim();
            if rest.is_empty() {
                return Err(ScriptError::Usage(":insert P(c1, ..., ck)"));
            }
            let (p, args) = parse_fact(voc, rest)?;
            Ok(Some(ScriptLine::Insert(p, args)))
        }
        "assert-ne" => {
            let mut words = cmd["assert-ne".len()..].split_whitespace();
            let (Some(a), Some(b)) = (words.next(), words.next()) else {
                return Err(ScriptError::Usage(":assert-ne <a> <b>"));
            };
            let (ca, cb) = (voc.const_id(a), voc.const_id(b));
            match (ca, cb) {
                (Some(ca), Some(cb)) => Ok(Some(ScriptLine::AssertNe(ca, cb))),
                _ => {
                    let unknown = if ca.is_none() { a } else { b };
                    Err(ScriptError::UnknownConstant(unknown.to_string()))
                }
            }
        }
        other => Err(ScriptError::Unsupported(other.to_string())),
    }
}

/// Parses a ground atom in the query syntax (e.g.
/// `TEACHES(socrates, plato)`) into a fact, for `:insert` everywhere the
/// dialect is spoken.
pub fn parse_fact(voc: &Vocabulary, text: &str) -> Result<(PredId, Vec<ConstId>), ScriptError> {
    let query = parse_query(voc, text).map_err(|e| ScriptError::Parse(e.to_string()))?;
    let (head, body) = query.into_parts();
    let Formula::Atom(p, terms) = body else {
        return Err(ScriptError::NotAFact);
    };
    if !head.is_empty() {
        return Err(ScriptError::NotAFact);
    }
    let mut args = Vec::with_capacity(terms.len());
    for term in terms.iter() {
        match term {
            Term::Const(c) => args.push(*c),
            Term::Var(_) => return Err(ScriptError::NotAFact),
        }
    }
    Ok((p, args))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voc() -> Vocabulary {
        let mut voc = Vocabulary::new();
        voc.add_consts(["a", "b"]).unwrap();
        voc.add_pred("P", 2).unwrap();
        voc
    }

    #[test]
    fn parses_queries_commands_and_noise() {
        let voc = voc();
        assert_eq!(parse_line(&voc, "").unwrap(), None);
        assert_eq!(parse_line(&voc, "  # comment").unwrap(), None);
        assert!(matches!(
            parse_line(&voc, "(x) . P(a, x)").unwrap(),
            Some(ScriptLine::Query(_))
        ));
        assert_eq!(parse_line(&voc, ":stats").unwrap(), Some(ScriptLine::Stats));
        assert_eq!(parse_line(&voc, ":quit").unwrap(), Some(ScriptLine::Quit));
        assert_eq!(parse_line(&voc, ":q").unwrap(), Some(ScriptLine::Quit));
        assert_eq!(
            parse_line(&voc, ":shutdown").unwrap(),
            Some(ScriptLine::Shutdown)
        );
        let insert = parse_line(&voc, ":insert P(a, b)").unwrap().unwrap();
        assert!(matches!(insert, ScriptLine::Insert(_, ref args) if args.len() == 2));
        assert!(insert.to_delta().is_some());
        let ne = parse_line(&voc, ":assert-ne a b").unwrap().unwrap();
        assert!(matches!(ne, ScriptLine::AssertNe(_, _)));
        assert!(ne.to_delta().is_some());
        assert!(ScriptLine::Stats.to_delta().is_none());
    }

    #[test]
    fn error_diagnostics_are_stable() {
        let voc = voc();
        let parse = parse_line(&voc, "NOPE(").unwrap_err();
        assert!(parse.to_string().starts_with("parse error: "), "{parse}");
        let fact = parse_line(&voc, ":insert P(a, b) | P(b, a)").unwrap_err();
        assert!(fact.to_string().contains("ground atom"), "{fact}");
        let var = parse_line(&voc, ":insert P(a, x)").unwrap_err();
        assert!(matches!(var, ScriptError::Parse(_) | ScriptError::NotAFact));
        let usage = parse_line(&voc, ":insert").unwrap_err();
        assert_eq!(usage.to_string(), "usage: :insert P(c1, ..., ck)");
        let usage = parse_line(&voc, ":assert-ne a").unwrap_err();
        assert_eq!(usage.to_string(), "usage: :assert-ne <a> <b>");
        let unknown = parse_line(&voc, ":assert-ne a nope").unwrap_err();
        assert_eq!(unknown.to_string(), "unknown constant `nope`");
        let cmd = parse_line(&voc, ":mode exact").unwrap_err();
        assert!(
            cmd.to_string()
                .contains("`:mode` is not available in script mode"),
            "{cmd}"
        );
    }
}
