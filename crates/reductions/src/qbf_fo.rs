//! Theorem 7: reduction from `B_{k+1}` QBF truth to evaluation of `Σᴱₖ`
//! first-order queries over CW logical databases.
//!
//! For `φ = ∀x_{1,1}…x_{1,m₁} ∃x_{2,*} … Q x_{k+1,*} ψ`, the database has
//! constants `0, 1, c₁,…,c_{m₁}`, facts `M(1)` and `Nⱼ(cⱼ)`, and the
//! single uniqueness axiom `¬(0 = 1)`. The query replaces first-block
//! variables `x_{1,j}` by `Nⱼ(1)` and later variables `x_{i,j}` by
//! `M(y_{i,j})`, keeping the quantifier prefix from block 2 on:
//!
//! `σ = ∃y_{2,*} … Q y_{k+1,*} χ`.
//!
//! The universal quantification over the mappings `h` of Theorem 1
//! simulates the universal first block (`x_{1,j}` is true iff
//! `h(cⱼ) = h(1)`), and the query's own quantifiers simulate the rest
//! (`y = h(1)` encodes true). Then `φ` is true iff `T ⊨_f σ`.

use crate::qbf::{Lit, Qbf, Quant};
use qld_core::{certainly_holds, CwDatabase};
use qld_logic::{Formula, Query, Term, Var, Vocabulary};

/// The output of the Theorem 7 reduction.
#[derive(Debug, Clone)]
pub struct QbfFoInstance {
    /// The CW logical database (grows with `m₁` only).
    pub db: CwDatabase,
    /// The `Σᴱₖ`-shaped first-order Boolean query.
    pub query: Query,
}

/// Builds the Theorem 7 instance.
///
/// # Panics
/// Panics if the formula does not start with a universal block (`B_{k+1}`
/// shape).
pub fn reduce(qbf: &Qbf) -> QbfFoInstance {
    assert!(
        qbf.starts_universal(),
        "Theorem 7 requires a leading universal block"
    );
    let m1 = qbf.blocks()[0].1;

    let mut voc = Vocabulary::new();
    let zero = voc.add_const("0").unwrap();
    let one = voc.add_const("1").unwrap();
    let cs: Vec<_> = (1..=m1)
        .map(|j| voc.add_const(&format!("c{j}")).unwrap())
        .collect();
    let m = voc.add_pred("M", 1).unwrap();
    let ns: Vec<_> = (1..=m1)
        .map(|j| voc.add_pred(&format!("N{j}"), 1).unwrap())
        .collect();

    let mut builder = CwDatabase::builder(voc).fact(m, &[one]).unique(zero, one);
    for (j, c) in cs.iter().enumerate() {
        builder = builder.fact(ns[j], &[*c]);
    }
    let db = builder.build().expect("reduction output is well-formed");

    // χ: the matrix with x_{1,j} ↦ N_j(1) and x_{i,j} ↦ M(y_{i,j}).
    let lit_formula = |lit: &Lit| -> Formula {
        let atom = if qbf.block_of(lit.var) == 0 {
            Formula::atom(ns[qbf.index_in_block(lit.var)], [Term::Const(one)])
        } else {
            Formula::atom(m, [Term::Var(Var(lit.var as u32))])
        };
        if lit.positive {
            atom
        } else {
            Formula::not(atom)
        }
    };
    let chi = Formula::and(
        qbf.clauses()
            .iter()
            .map(|clause| Formula::or(clause.iter().map(lit_formula).collect()))
            .collect(),
    );

    // Prefix: blocks 2..k+1 quantify their y variables.
    let mut body = chi;
    let mut var_base: usize = qbf.num_vars();
    for (quant, size) in qbf.blocks().iter().skip(1).rev() {
        var_base -= size;
        let vars = (var_base..var_base + size).map(|v| Var(v as u32));
        body = match quant {
            Quant::Exists => Formula::exists(vars, body),
            Quant::Forall => Formula::forall(vars, body),
        };
    }
    let query = Query::boolean(body).expect("all matrix variables are quantified");
    query.check(db.voc()).expect("construction is well-formed");
    QbfFoInstance { db, query }
}

/// Decides the QBF through the logical database (exponential — this is
/// the `Πᵖₖ₊₁`-complete combined-complexity evaluation).
pub fn qbf_true_via_logical_db(qbf: &Qbf) -> bool {
    let inst = reduce(qbf);
    certainly_holds(&inst.db, &inst.query).expect("constructed query is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(qbf: &Qbf) {
        assert_eq!(
            qbf_true_via_logical_db(qbf),
            qbf.is_true(),
            "reduction disagrees with solver on {qbf:?}"
        );
    }

    #[test]
    fn k0_pure_universal() {
        // ∀x₁x₂ (x₁ ∨ ¬x₁): true.
        check(&Qbf::new(
            vec![(Quant::Forall, 2)],
            vec![vec![Lit::pos(0), Lit::neg(0)]],
        ));
        // ∀x₁x₂ (x₁ ∨ x₂): false.
        check(&Qbf::new(
            vec![(Quant::Forall, 2)],
            vec![vec![Lit::pos(0), Lit::pos(1)]],
        ));
        // ∀x (¬x): false.
        check(&Qbf::new(vec![(Quant::Forall, 1)], vec![vec![Lit::neg(0)]]));
    }

    #[test]
    fn k1_forall_exists() {
        // ∀x ∃y ((x∨y) ∧ (¬x∨¬y)): true (y = ¬x).
        check(&Qbf::new(
            vec![(Quant::Forall, 1), (Quant::Exists, 1)],
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::neg(0), Lit::neg(1)],
            ],
        ));
        // ∀x ∃y ((x∨y) ∧ (x∨¬y)): false (x=false kills both).
        check(&Qbf::new(
            vec![(Quant::Forall, 1), (Quant::Exists, 1)],
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::pos(0), Lit::neg(1)],
            ],
        ));
        // Two universal vars: ∀x₁x₂ ∃y ((x₁∨x₂∨y) ∧ (¬x₁∨¬x₂∨¬y)): true.
        check(&Qbf::new(
            vec![(Quant::Forall, 2), (Quant::Exists, 1)],
            vec![
                vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)],
                vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)],
            ],
        ));
    }

    #[test]
    fn k2_three_blocks() {
        // ∀x ∃y ∀z ((x∨y∨z) ∧ (¬x∨y∨¬z)): true (y = true).
        check(&Qbf::new(
            vec![(Quant::Forall, 1), (Quant::Exists, 1), (Quant::Forall, 1)],
            vec![
                vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)],
                vec![Lit::neg(0), Lit::pos(1), Lit::neg(2)],
            ],
        ));
        // ∀x ∃y ∀z ((y∨z) ∧ (¬y∨¬z)): false.
        check(&Qbf::new(
            vec![(Quant::Forall, 1), (Quant::Exists, 1), (Quant::Forall, 1)],
            vec![
                vec![Lit::pos(1), Lit::pos(2)],
                vec![Lit::neg(1), Lit::neg(2)],
            ],
        ));
    }

    #[test]
    fn query_shape_is_sigma_k() {
        // The query must carry only the blocks after the first, and be
        // Boolean first-order.
        let qbf = Qbf::new(
            vec![(Quant::Forall, 1), (Quant::Exists, 2), (Quant::Forall, 1)],
            vec![vec![Lit::pos(1), Lit::neg(3)]],
        );
        let inst = reduce(&qbf);
        assert!(inst.query.is_boolean());
        assert!(inst.query.is_first_order());
        // Prefix: ∃∃∀…
        match inst.query.body() {
            Formula::Exists(..) => {}
            other => panic!("expected leading ∃, got {other:?}"),
        }
        assert_eq!(inst.query.body().quantifier_rank(), 3);
    }

    #[test]
    #[should_panic(expected = "universal block")]
    fn existential_start_rejected() {
        let qbf = Qbf::new(vec![(Quant::Exists, 1)], vec![vec![Lit::pos(0)]]);
        reduce(&qbf);
    }

    #[test]
    fn database_size_depends_on_first_block_only() {
        let small = reduce(&Qbf::new(
            vec![(Quant::Forall, 2), (Quant::Exists, 1)],
            vec![vec![Lit::pos(0)]],
        ));
        let large = reduce(&Qbf::new(
            vec![(Quant::Forall, 2), (Quant::Exists, 4)],
            vec![vec![Lit::pos(0)]],
        ));
        assert_eq!(small.db.num_consts(), large.db.num_consts());
    }
}
