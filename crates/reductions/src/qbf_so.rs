//! Theorem 9: reduction from `B_{k+1}` QBF truth to evaluation of a
//! **fixed** `Σ¹ₖ` second-order query — the data-complexity analogue of
//! Theorem 7.
//!
//! The matrix must be a conjunction of 3-literal clauses. For a clause
//! whose literals have signs `(s₁,s₂,s₃)` and quantifier levels
//! `(i₁,i₂,i₃)` there is a ternary predicate `R^{s₁s₂s₃}_{i₁i₂i₃}`, and
//! the clause contributes the fact
//! `R^{s₁s₂s₃}_{i₁i₂i₃}(c_{i₁,j₁}, c_{i₂,j₂}, c_{i₃,j₃})` — *the clauses
//! live in the data*, while the query only depends on `k` and the clause
//! shapes. Level-1 variables are simulated by the Theorem 1 mapping `h`
//! (`x_{1,j}` is true iff `h(c_{1,j})` lands in `N₁ = {h(1)}`); levels
//! ≥ 2 are simulated by quantified unary predicate variables `N₂ … N_{k+1}`:
//!
//! `σ = ∃N₂ ∀N₃ … Q N_{k+1} ⋀_{shapes} ∀xyz (R(x,y,z) → l₁(x) ∨ l₂(y) ∨ l₃(z))`.
//!
//! Uniqueness axioms make all level-≥2 constants pairwise distinct, so
//! the set quantifiers can realize every Boolean assignment of those
//! blocks.

use crate::qbf::{Qbf, Quant};
use qld_core::{certainly_holds, CwDatabase};
use qld_logic::{ConstId, Formula, PredVarId, Query, Term, Var, Vocabulary};
use std::collections::HashMap;

/// The output of the Theorem 9 reduction.
#[derive(Debug, Clone)]
pub struct QbfSoInstance {
    /// The CW logical database carrying the clauses as facts.
    pub db: CwDatabase,
    /// The `Σ¹ₖ` second-order Boolean query (fixed given `k` and the
    /// clause shapes).
    pub query: Query,
}

/// Builds the Theorem 9 instance. Clauses are padded to exactly three
/// literals first.
///
/// # Panics
/// Panics if the formula does not start with a universal block, or has a
/// clause with more than three (or zero) literals.
pub fn reduce(qbf: &Qbf) -> QbfSoInstance {
    assert!(
        qbf.starts_universal(),
        "Theorem 9 requires a leading universal block"
    );
    let qbf = qbf
        .to_exactly_three()
        .expect("Theorem 9 requires 1..=3-literal clauses");
    let k_plus_1 = qbf.blocks().len();

    let mut voc = Vocabulary::new();
    let one = voc.add_const("1").unwrap();
    // Constant per propositional variable, in global order.
    let cvar: Vec<ConstId> = (0..qbf.num_vars())
        .map(|v| {
            let level = qbf.block_of(v) + 1;
            let j = qbf.index_in_block(v) + 1;
            voc.add_const(&format!("x{level}_{j}")).unwrap()
        })
        .collect();
    let n1 = voc.add_pred("N1", 1).unwrap();

    // One ternary predicate per clause *shape* (signs × levels).
    let mut shape_preds: HashMap<(Vec<bool>, Vec<usize>), qld_logic::PredId> = HashMap::new();
    let mut shapes: Vec<(Vec<bool>, Vec<usize>, qld_logic::PredId)> = Vec::new();
    for clause in qbf.clauses() {
        let signs: Vec<bool> = clause.iter().map(|l| l.positive).collect();
        let levels: Vec<usize> = clause.iter().map(|l| qbf.block_of(l.var) + 1).collect();
        let key = (signs.clone(), levels.clone());
        if let std::collections::hash_map::Entry::Vacant(entry) = shape_preds.entry(key) {
            let name = format!(
                "R_{}_{}",
                signs
                    .iter()
                    .map(|s| if *s { 'p' } else { 'n' })
                    .collect::<String>(),
                levels
                    .iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join("_")
            );
            let p = voc.add_pred(&name, 3).unwrap();
            entry.insert(p);
            shapes.push((signs, levels, p));
        }
    }

    let mut builder = CwDatabase::builder(voc).fact(n1, &[one]);
    // Facts: the clauses.
    for clause in qbf.clauses() {
        let signs: Vec<bool> = clause.iter().map(|l| l.positive).collect();
        let levels: Vec<usize> = clause.iter().map(|l| qbf.block_of(l.var) + 1).collect();
        let p = shape_preds[&(signs, levels)];
        let args: Vec<ConstId> = clause.iter().map(|l| cvar[l.var]).collect();
        builder = builder.fact(p, &args);
    }
    // Uniqueness: all pairs of level-≥2 variable constants are distinct,
    // so the quantified sets can realize every assignment.
    let level_ge2: Vec<ConstId> = (0..qbf.num_vars())
        .filter(|&v| qbf.block_of(v) >= 1)
        .map(|v| cvar[v])
        .collect();
    builder = builder.pairwise_unique(&level_ge2);
    let db = builder.build().expect("reduction output is well-formed");

    // ξ: per shape, ∀xyz (R(x,y,z) → l₁(x) ∨ l₂(y) ∨ l₃(z)), where the
    // level-1 literal reads the base predicate N1 and level-i (i ≥ 2)
    // literals read predicate variable N_i = PredVar(i − 2).
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let membership = |level: usize, t: Var| -> Formula {
        if level == 1 {
            Formula::atom(n1, [Term::Var(t)])
        } else {
            Formula::so_atom(PredVarId((level - 2) as u32), [Term::Var(t)])
        }
    };
    let xi = Formula::and(
        shapes
            .iter()
            .map(|(signs, levels, p)| {
                let lits: Vec<Formula> = signs
                    .iter()
                    .zip(levels.iter())
                    .zip([x, y, z])
                    .map(|((sign, level), t)| {
                        let atom = membership(*level, t);
                        if *sign {
                            atom
                        } else {
                            Formula::not(atom)
                        }
                    })
                    .collect();
                Formula::forall(
                    [x, y, z],
                    Formula::implies(
                        Formula::atom(*p, [Term::Var(x), Term::Var(y), Term::Var(z)]),
                        Formula::or(lits),
                    ),
                )
            })
            .collect(),
    );

    // σ: the alternating second-order prefix over N₂ … N_{k+1}.
    let mut body = xi;
    for (b, (quant, _)) in qbf.blocks().iter().enumerate().skip(1).rev() {
        let nv = PredVarId((b - 1) as u32);
        body = match quant {
            Quant::Exists => Formula::SoExists(nv, 1, Box::new(body)),
            Quant::Forall => Formula::SoForall(nv, 1, Box::new(body)),
        };
    }
    debug_assert_eq!(qbf.blocks().len(), k_plus_1);
    let query = Query::boolean(body).expect("sentence");
    query.check(db.voc()).expect("construction is well-formed");
    QbfSoInstance { db, query }
}

/// Decides the QBF through the logical database (doubly exponential here:
/// kernel enumeration × brute-force second-order quantification).
pub fn qbf_true_via_logical_db(qbf: &Qbf) -> bool {
    let inst = reduce(qbf);
    certainly_holds(&inst.db, &inst.query).expect("constructed query is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qbf::Lit;

    fn check(qbf: &Qbf) {
        assert_eq!(
            qbf_true_via_logical_db(qbf),
            qbf.is_true(),
            "reduction disagrees with solver on {qbf:?}"
        );
    }

    #[test]
    fn k0_pure_universal() {
        // ∀x₁x₂ (x₁ ∨ ¬x₁ ∨ x₂): true.
        check(&Qbf::new(
            vec![(Quant::Forall, 2)],
            vec![vec![Lit::pos(0), Lit::neg(0), Lit::pos(1)]],
        ));
        // ∀x₁x₂ (x₁ ∨ x₂ ∨ x₂): false.
        check(&Qbf::new(
            vec![(Quant::Forall, 2)],
            vec![vec![Lit::pos(0), Lit::pos(1), Lit::pos(1)]],
        ));
    }

    #[test]
    fn k1_forall_exists() {
        // ∀x ∃y ((x∨y) ∧ (¬x∨¬y)): true.
        check(&Qbf::new(
            vec![(Quant::Forall, 1), (Quant::Exists, 1)],
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::neg(0), Lit::neg(1)],
            ],
        ));
        // ∀x ∃y ((x∨y) ∧ (x∨¬y)): false.
        check(&Qbf::new(
            vec![(Quant::Forall, 1), (Quant::Exists, 1)],
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::pos(0), Lit::neg(1)],
            ],
        ));
        // Mixed-level clause with two ∃ vars:
        // ∀x ∃y₁y₂ ((¬x∨y₁∨y₂) ∧ (x∨¬y₁∨¬y₂)): true.
        check(&Qbf::new(
            vec![(Quant::Forall, 1), (Quant::Exists, 2)],
            vec![
                vec![Lit::neg(0), Lit::pos(1), Lit::pos(2)],
                vec![Lit::pos(0), Lit::neg(1), Lit::neg(2)],
            ],
        ));
    }

    #[test]
    fn k2_three_blocks() {
        // ∀x ∃y ∀z ((x∨y∨z) ∧ (¬x∨y∨¬z)): true (y = true).
        check(&Qbf::new(
            vec![(Quant::Forall, 1), (Quant::Exists, 1), (Quant::Forall, 1)],
            vec![
                vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)],
                vec![Lit::neg(0), Lit::pos(1), Lit::neg(2)],
            ],
        ));
        // ∀x ∃y ∀z ((y∨z∨z) ∧ (¬y∨¬z∨¬z)): false.
        check(&Qbf::new(
            vec![(Quant::Forall, 1), (Quant::Exists, 1), (Quant::Forall, 1)],
            vec![
                vec![Lit::pos(1), Lit::pos(2), Lit::pos(2)],
                vec![Lit::neg(1), Lit::neg(2), Lit::neg(2)],
            ],
        ));
    }

    #[test]
    fn query_is_fixed_given_shapes() {
        // Two formulas with identical clause shapes but different clause
        // *contents* produce the same query — data complexity: only the
        // database changes.
        let a = Qbf::new(
            vec![(Quant::Forall, 2), (Quant::Exists, 2)],
            vec![vec![Lit::pos(0), Lit::pos(2), Lit::pos(3)]],
        );
        let b = Qbf::new(
            vec![(Quant::Forall, 2), (Quant::Exists, 2)],
            vec![vec![Lit::pos(1), Lit::pos(3), Lit::pos(2)]],
        );
        let ia = reduce(&a);
        let ib = reduce(&b);
        assert_eq!(ia.query, ib.query);
        assert_ne!(ia.db, ib.db);
    }

    #[test]
    fn query_class_is_second_order() {
        let qbf = Qbf::new(
            vec![(Quant::Forall, 1), (Quant::Exists, 1)],
            vec![vec![Lit::pos(0), Lit::pos(1)]],
        );
        let inst = reduce(&qbf);
        assert_eq!(inst.query.class(), qld_logic::QueryClass::SecondOrder);
        assert!(matches!(inst.query.body(), Formula::SoExists(..)));
    }
}
