//! Theorem 5(2): the reduction from graph 3-colorability to the complement
//! of Boolean query evaluation over CW logical databases.
//!
//! Given `G = (V, E)`, the database has constants `1, 2, 3` (pairwise
//! distinct) and one constant `c_v` per vertex (with *no* uniqueness
//! axioms — the vertex constants are the unknown values the mapping `h`
//! is free to collapse onto colors), facts `M(1), M(2), M(3)` and
//! `R(c_u, c_v)` per edge, and the fixed Boolean query
//!
//! `φ = (∀y M(y)) → (∃z R(z, z))`.
//!
//! `G` is 3-colorable **iff** `LB ⊭_f φ`: a respecting mapping that
//! falsifies `φ` must squash every vertex constant onto `{1,2,3}` without
//! creating a self-loop — i.e., it *is* a proper 3-coloring.

use crate::graph::Graph;
use qld_core::{certainly_holds, CwDatabase};
use qld_logic::{parser::parse_query, Query, Vocabulary};

/// The output of the reduction.
#[derive(Debug, Clone)]
pub struct ThreeColorInstance {
    /// The CW logical database encoding the graph.
    pub db: CwDatabase,
    /// The fixed query `(∀y M(y)) → (∃z R(z, z))`. Note the query does
    /// not depend on the graph — that is what makes this a *data*
    /// complexity bound.
    pub query: Query,
}

/// Builds the Theorem 5 instance for a graph.
pub fn reduce(g: &Graph) -> ThreeColorInstance {
    let mut voc = Vocabulary::new();
    voc.add_consts(["1", "2", "3"]).unwrap();
    for v in 0..g.num_vertices() {
        voc.add_const(&format!("v{v}")).unwrap();
    }
    let m = voc.add_pred("M", 1).unwrap();
    let r = voc.add_pred("R", 2).unwrap();
    let one = voc.const_id("1").unwrap();
    let two = voc.const_id("2").unwrap();
    let three = voc.const_id("3").unwrap();
    let cv = |v: u32| qld_logic::ConstId(3 + v);

    let mut builder = CwDatabase::builder(voc)
        .fact(m, &[one])
        .fact(m, &[two])
        .fact(m, &[three])
        .unique(one, two)
        .unique(one, three)
        .unique(two, three);
    for &(u, v) in g.edges() {
        builder = builder.fact(r, &[cv(u), cv(v)]);
    }
    let db = builder.build().expect("reduction output is well-formed");
    let query =
        parse_query(db.voc(), "(forall y. M(y)) -> (exists z. R(z, z))").expect("fixed query");
    ThreeColorInstance { db, query }
}

/// Decides 3-colorability through the logical database (exponential: this
/// is the co-NP-complete certain-answer evaluation).
pub fn is_3colorable_via_logical_db(g: &Graph) -> bool {
    let inst = reduce(g);
    !certainly_holds(&inst.db, &inst.query).expect("fixed query is valid")
}

/// Independent backtracking 3-coloring solver (the oracle). Returns a
/// proper coloring when one exists.
pub fn solve_3coloring(g: &Graph) -> Option<Vec<u8>> {
    let n = g.num_vertices();
    if n == 0 {
        return Some(Vec::new());
    }
    let adj = g.adjacency();
    // Order vertices by descending degree for earlier pruning.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(adj[v].len()));
    let mut color: Vec<u8> = vec![u8::MAX; n];
    fn rec(pos: usize, order: &[usize], adj: &[Vec<u32>], color: &mut [u8]) -> bool {
        if pos == order.len() {
            return true;
        }
        let v = order[pos];
        'colors: for c in 0..3u8 {
            for &w in &adj[v] {
                if w as usize == v {
                    return false; // self-loop: no proper coloring
                }
                if color[w as usize] == c {
                    continue 'colors;
                }
            }
            color[v] = c;
            if rec(pos + 1, order, adj, color) {
                return true;
            }
            color[v] = u8::MAX;
        }
        false
    }
    if rec(0, &order, &adj, &mut color) {
        Some(color)
    } else {
        None
    }
}

/// Checks that a coloring is proper.
pub fn is_proper_coloring(g: &Graph, coloring: &[u8]) -> bool {
    g.edges()
        .iter()
        .all(|&(u, v)| u != v && coloring[u as usize] != coloring[v as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_basics() {
        assert!(solve_3coloring(&Graph::ring(4)).is_some());
        assert!(solve_3coloring(&Graph::ring(5)).is_some()); // odd ring: 3 colors
        assert!(solve_3coloring(&Graph::complete(3)).is_some());
        assert!(solve_3coloring(&Graph::complete(4)).is_none());
        assert!(solve_3coloring(&Graph::new(2, [(1, 1)])).is_none()); // self-loop
        let g = Graph::wheel(5); // odd ring + hub needs 4 colors
        assert!(solve_3coloring(&g).is_none());
        let g = Graph::wheel(4); // even ring + hub: 3 colors
        assert!(solve_3coloring(&g).is_some());
    }

    #[test]
    fn solver_returns_proper_colorings() {
        for g in [
            Graph::ring(5),
            Graph::ring(6),
            Graph::complete(3),
            Graph::complete_bipartite(2, 3),
            Graph::wheel(4),
        ] {
            let coloring = solve_3coloring(&g).expect("colorable");
            assert!(is_proper_coloring(&g, &coloring), "{g:?}");
        }
    }

    #[test]
    fn reduction_database_shape() {
        let g = Graph::ring(3);
        let inst = reduce(&g);
        assert_eq!(inst.db.num_consts(), 6); // 1,2,3 + three vertices
        assert_eq!(inst.db.num_facts(), 3 + 3); // M facts + edges
        assert_eq!(inst.db.num_ne(), 3);
        assert!(inst.query.is_boolean());
        assert!(inst.query.is_first_order());
    }

    #[test]
    fn logical_db_agrees_with_solver() {
        let cases = [
            Graph::ring(3),
            Graph::ring(4),
            Graph::ring(5),
            Graph::complete(3),
            Graph::complete(4),
            Graph::complete_bipartite(2, 2),
            Graph::new(2, [(1, 1)]),
            Graph::new(3, []),
            Graph::wheel(4),
        ];
        for g in cases {
            let expected = solve_3coloring(&g).is_some();
            let via_db = is_3colorable_via_logical_db(&g);
            assert_eq!(via_db, expected, "disagreement on {g:?}");
        }
    }

    #[test]
    fn empty_graph_is_colorable() {
        let g = Graph::new(0, []);
        assert!(is_3colorable_via_logical_db(&g));
    }
}
