//! Quantified Boolean formulas in the `B_{k+1}` shape of \[St77\] used by
//! Theorems 7 and 9, plus a recursive solver (the oracle).

/// A quantifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    /// Universal block.
    Forall,
    /// Existential block.
    Exists,
}

impl Quant {
    /// The other quantifier.
    pub fn flip(self) -> Quant {
        match self {
            Quant::Forall => Quant::Exists,
            Quant::Exists => Quant::Forall,
        }
    }
}

/// A literal: a propositional variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// Global variable index.
    pub var: usize,
    /// `true` for a positive occurrence.
    pub positive: bool,
}

impl Lit {
    /// Positive literal on `var`.
    pub fn pos(var: usize) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal on `var`.
    pub fn neg(var: usize) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }
}

/// A prenex CNF quantified Boolean formula.
///
/// Variables are numbered globally `0..num_vars()`, block by block: block
/// `i` covers the `block_sizes[i]` variables following those of earlier
/// blocks. `B_{k+1}` formulas have strictly alternating blocks starting
/// with `∀` (validated by [`Qbf::new`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Qbf {
    blocks: Vec<(Quant, usize)>,
    clauses: Vec<Vec<Lit>>,
}

impl Qbf {
    /// Builds and validates a QBF.
    ///
    /// # Panics
    /// Panics on: empty blocks, consecutive blocks with the same
    /// quantifier (not prenex-alternating), or a literal out of range.
    pub fn new(blocks: Vec<(Quant, usize)>, clauses: Vec<Vec<Lit>>) -> Qbf {
        assert!(!blocks.is_empty(), "QBF needs at least one block");
        for (q, size) in &blocks {
            assert!(*size > 0, "empty {q:?} block");
        }
        for pair in blocks.windows(2) {
            assert_ne!(pair[0].0, pair[1].0, "blocks must alternate");
        }
        let n: usize = blocks.iter().map(|(_, s)| s).sum();
        for clause in &clauses {
            for lit in clause {
                assert!(lit.var < n, "literal variable {} out of range", lit.var);
            }
        }
        Qbf { blocks, clauses }
    }

    /// The quantifier blocks `(quantifier, size)`.
    pub fn blocks(&self) -> &[(Quant, usize)] {
        &self.blocks
    }

    /// The CNF matrix.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Total number of variables.
    pub fn num_vars(&self) -> usize {
        self.blocks.iter().map(|(_, s)| s).sum()
    }

    /// The block index of a variable.
    pub fn block_of(&self, var: usize) -> usize {
        let mut acc = 0;
        for (i, (_, s)) in self.blocks.iter().enumerate() {
            acc += s;
            if var < acc {
                return i;
            }
        }
        panic!("variable {var} out of range");
    }

    /// The index of a variable within its block.
    pub fn index_in_block(&self, var: usize) -> usize {
        let mut acc = 0;
        for (_, s) in &self.blocks {
            if var < acc + s {
                return var - acc;
            }
            acc += s;
        }
        panic!("variable {var} out of range");
    }

    /// Is this in the `B_{k+1}` shape (first block universal)? Theorems 7
    /// and 9 require it.
    pub fn starts_universal(&self) -> bool {
        self.blocks[0].0 == Quant::Forall
    }

    /// `k` such that this formula is in `B_{k+1}`: the number of blocks
    /// after the leading universal one.
    pub fn alternations_after_first(&self) -> usize {
        self.blocks.len() - 1
    }

    /// Evaluates the matrix under a full assignment.
    pub fn matrix_value(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|lit| assignment[lit.var] == lit.positive))
    }

    /// Recursive QBF solver — the independent oracle for Theorems 7 and 9.
    pub fn is_true(&self) -> bool {
        let mut assignment = vec![false; self.num_vars()];
        self.solve(0, &mut assignment)
    }

    fn solve(&self, var: usize, assignment: &mut Vec<bool>) -> bool {
        if var == self.num_vars() {
            return self.matrix_value(assignment);
        }
        let quant = self.blocks[self.block_of(var)].0;
        for value in [false, true] {
            assignment[var] = value;
            let sub = self.solve(var + 1, assignment);
            match quant {
                Quant::Exists if sub => return true,
                Quant::Forall if !sub => return false,
                _ => {}
            }
        }
        quant == Quant::Forall
    }

    /// Pads every clause to exactly three literals by repeating its last
    /// literal (semantically neutral); clauses longer than three are
    /// rejected. Theorem 9's construction wants exactly-3 clauses.
    pub fn to_exactly_three(&self) -> Option<Qbf> {
        let mut clauses = Vec::with_capacity(self.clauses.len());
        for clause in &self.clauses {
            if clause.is_empty() || clause.len() > 3 {
                return None;
            }
            let mut c = clause.clone();
            while c.len() < 3 {
                c.push(*c.last().expect("nonempty"));
            }
            clauses.push(c);
        }
        Some(Qbf {
            blocks: self.blocks.clone(),
            clauses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ∀x ∃y (x ∨ y) ∧ (¬x ∨ ¬y) — true: pick y = ¬x.
    fn xor_like() -> Qbf {
        Qbf::new(
            vec![(Quant::Forall, 1), (Quant::Exists, 1)],
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::neg(0), Lit::neg(1)],
            ],
        )
    }

    #[test]
    fn solver_on_xor_like() {
        assert!(xor_like().is_true());
    }

    #[test]
    fn forall_fails_when_no_uniform_choice() {
        // ∀x ∃y (x ∧ y)… as CNF: (x) ∧ (y). ∀x fails at x=false.
        let q = Qbf::new(
            vec![(Quant::Forall, 1), (Quant::Exists, 1)],
            vec![vec![Lit::pos(0)], vec![Lit::pos(1)]],
        );
        assert!(!q.is_true());
    }

    #[test]
    fn pure_universal_tautology() {
        // ∀x (x ∨ ¬x)
        let q = Qbf::new(
            vec![(Quant::Forall, 1)],
            vec![vec![Lit::pos(0), Lit::neg(0)]],
        );
        assert!(q.is_true());
    }

    #[test]
    fn empty_matrix_is_true() {
        let q = Qbf::new(vec![(Quant::Forall, 2)], vec![]);
        assert!(q.is_true());
    }

    #[test]
    fn three_level_alternation() {
        // ∀x ∃y ∀z ((x∨y∨z) ∧ (¬x∨y∨¬z)): choose y = true always.
        let q = Qbf::new(
            vec![(Quant::Forall, 1), (Quant::Exists, 1), (Quant::Forall, 1)],
            vec![
                vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)],
                vec![Lit::neg(0), Lit::pos(1), Lit::neg(2)],
            ],
        );
        assert!(q.is_true());
        // Flip: require y to track z, impossible before seeing z.
        // ∀x ∃y ∀z ((y∨z) ∧ (¬y∨¬z))
        let q = Qbf::new(
            vec![(Quant::Forall, 1), (Quant::Exists, 1), (Quant::Forall, 1)],
            vec![
                vec![Lit::pos(1), Lit::pos(2)],
                vec![Lit::neg(1), Lit::neg(2)],
            ],
        );
        assert!(!q.is_true());
    }

    #[test]
    fn block_indexing() {
        let q = Qbf::new(
            vec![(Quant::Forall, 2), (Quant::Exists, 3)],
            vec![vec![Lit::pos(4)]],
        );
        assert_eq!(q.block_of(0), 0);
        assert_eq!(q.block_of(1), 0);
        assert_eq!(q.block_of(2), 1);
        assert_eq!(q.block_of(4), 1);
        assert_eq!(q.index_in_block(1), 1);
        assert_eq!(q.index_in_block(2), 0);
        assert_eq!(q.index_in_block(4), 2);
        assert!(q.starts_universal());
        assert_eq!(q.alternations_after_first(), 1);
    }

    #[test]
    #[should_panic(expected = "alternate")]
    fn non_alternating_rejected() {
        Qbf::new(vec![(Quant::Forall, 1), (Quant::Forall, 1)], vec![]);
    }

    #[test]
    fn padding_to_three() {
        let q = xor_like();
        let padded = q.to_exactly_three().unwrap();
        assert!(padded.clauses().iter().all(|c| c.len() == 3));
        assert_eq!(q.is_true(), padded.is_true());
    }
}
