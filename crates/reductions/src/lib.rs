//! The complexity reductions of §4 of *Querying Logical Databases*,
//! together with independent solvers used as test oracles.
//!
//! * [`three_color`] — Theorem 5(2): graph 3-colorability reduces to
//!   (the complement of) Boolean query evaluation over CW logical
//!   databases, witnessing co-NP-hardness of data complexity; plus a
//!   backtracking 3-coloring solver.
//! * [`qbf`] — quantified Boolean formulas (`B_{k+1}`) and a recursive
//!   solver.
//! * [`qbf_fo`] — Theorem 7: `B_{k+1}` reduces to evaluation of `Σᴱₖ`
//!   first-order queries (combined complexity is `Πᵖₖ₊₁`-complete).
//! * [`qbf_so`] — Theorem 9: `B_{k+1}` reduces to evaluation of `Σ¹ₖ`
//!   second-order queries (data complexity is `Πᵖₖ₊₁`-complete).
//!
//! Beyond reproducing the lower bounds, these constructions double as a
//! deep differential test of the exact evaluator: every reduction output
//! is decided through `qld_core::exact::certainly_holds` and compared
//! against the dedicated solver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod qbf;
pub mod qbf_fo;
pub mod qbf_so;
pub mod three_color;

pub use graph::Graph;
pub use qbf::{Lit, Qbf, Quant};
