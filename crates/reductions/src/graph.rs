//! Undirected graphs for the 3-colorability reduction.

/// A simple undirected graph on vertices `0..n` (self-loops permitted —
//  they make a graph trivially non-colorable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// Normalized `(lo, hi)` edges, sorted, deduplicated.
    edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Builds a graph, normalizing the edge list.
    ///
    /// # Panics
    /// Panics if an edge mentions a vertex `≥ n`.
    pub fn new(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Graph {
        let mut es: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        for &(_, hi) in &es {
            assert!((hi as usize) < n, "edge endpoint {hi} out of range (n={n})");
        }
        es.sort_unstable();
        es.dedup();
        Graph { n, edges: es }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The normalized edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Per-vertex neighbour lists.
    pub fn adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            adj[a as usize].push(b);
            if a != b {
                adj[b as usize].push(a);
            }
        }
        adj
    }

    /// The cycle `C_n` (rings with `n` odd and `n ≥ 3` are 3-chromatic;
    /// even rings are 2-chromatic).
    pub fn ring(n: usize) -> Graph {
        let edges = (0..n as u32).map(|i| (i, ((i + 1) % n as u32)));
        Graph::new(n, edges)
    }

    /// The complete graph `K_n` (3-colorable iff `n ≤ 3`).
    pub fn complete(n: usize) -> Graph {
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((i, j));
            }
        }
        Graph::new(n, edges)
    }

    /// Complete bipartite `K_{a,b}` (always 2-colorable).
    pub fn complete_bipartite(a: usize, b: usize) -> Graph {
        let mut edges = Vec::new();
        for i in 0..a as u32 {
            for j in 0..b as u32 {
                edges.push((i, a as u32 + j));
            }
        }
        Graph::new(a + b, edges)
    }

    /// The wheel `W_n`: a ring of `n` vertices all joined to a hub
    /// (3-colorable iff `n` is even).
    pub fn wheel(n: usize) -> Graph {
        let mut edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let hub = n as u32;
        edges.extend((0..n as u32).map(|i| (i, hub)));
        Graph::new(n + 1, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        let g = Graph::new(3, [(2, 0), (0, 2), (1, 0)]);
        assert_eq!(g.edges(), &[(0, 1), (0, 2)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge() {
        Graph::new(2, [(0, 5)]);
    }

    #[test]
    fn ring_shape() {
        let g = Graph::ring(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        let adj = g.adjacency();
        assert!(adj.iter().all(|nbrs| nbrs.len() == 2));
    }

    #[test]
    fn complete_shape() {
        let g = Graph::complete(5);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn wheel_shape() {
        let g = Graph::wheel(4);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 8);
    }

    #[test]
    fn self_loop_kept() {
        let g = Graph::new(2, [(1, 1)]);
        assert_eq!(g.edges(), &[(1, 1)]);
        assert_eq!(g.adjacency()[1], vec![1]);
    }
}
