//! Storage strategies for the `NE` relation — the practical concern §5
//! closes with.
//!
//! "In general it is impractical to have NE explicitly contain all pairs
//! of values we know are distinct, since then its size could be up to
//! quadratic in the number of values in the database. In practice most
//! values in the database are known values." The paper's fix: a unary
//! relation `U` of *unknown* values, a relation `NE′` with the explicitly
//! known inequalities touching them, and the virtual definition
//!
//! `NE(x, y) ≡ NE′(x, y) ∨ (¬U(x) ∧ ¬U(y) ∧ ¬(x = y))`.
//!
//! [`NeStore`] implements both representations over the same uniqueness
//! axioms; experiment E9 benchmarks size and build/probe cost.

use qld_core::CwDatabase;
use qld_logic::{Formula, PredId, Term};
use qld_physical::{Elem, Relation};

/// A queryable representation of the inequality relation `NE`.
#[derive(Debug, Clone)]
pub enum NeStore {
    /// All pairs, materialized (both orientations).
    Explicit {
        /// The symmetric pair set.
        pairs: Relation,
    },
    /// The paper's compressed representation.
    Virtual {
        /// Sorted ids of constants classified as *unknown*: constants not
        /// known to differ from every other constant.
        unknown: Vec<Elem>,
        /// Explicit inequalities involving at least one unknown value
        /// (both orientations).
        ne_prime: Relation,
    },
}

impl NeStore {
    /// Builds the explicit representation from the uniqueness axioms.
    pub fn explicit(db: &CwDatabase) -> NeStore {
        NeStore::Explicit {
            pairs: Relation::collect(
                2,
                db.ne_pairs()
                    .iter()
                    .flat_map(|&(a, b)| [vec![a, b], vec![b, a]]),
            ),
        }
    }

    /// Builds the virtual representation. The *known* set must be a set of
    /// constants that are **pairwise** covered by uniqueness axioms (so
    /// that "known ∧ known ∧ distinct ⇒ NE" is sound); we pick one
    /// greedily, highest NE-degree first — a heuristic for the maximum
    /// clique of the NE graph, which on the paper's "most values are
    /// known" databases recovers exactly the known values. Everything
    /// else goes to `U`, and every axiom not internal to the known set is
    /// kept in `NE′`.
    ///
    /// The representation is exact for **any** axiom set (round-trip
    /// tested): known–known pairs are axioms by the clique invariant, and
    /// all remaining axioms are retained explicitly.
    pub fn virtualized(db: &CwDatabase) -> NeStore {
        let n = db.num_consts();
        let degrees = db.ne_degrees();
        // Constants adjacent to *everything* form a clique for free; only
        // the (few, on mostly-known data) deficient constants need pairwise
        // checks against the clique built so far.
        let mut known: Vec<Elem> = (0..n as Elem)
            .filter(|&c| degrees[c as usize] + 1 == n)
            .collect();
        let mut rest: Vec<Elem> = (0..n as Elem)
            .filter(|&c| degrees[c as usize] + 1 < n)
            .collect();
        rest.sort_by_key(|&c| std::cmp::Reverse(degrees[c as usize]));
        for c in rest {
            if known
                .iter()
                .all(|&k| db.is_ne(qld_logic::ConstId(c), qld_logic::ConstId(k)))
            {
                known.push(c);
            }
        }
        known.sort_unstable();
        let is_known = |e: Elem| known.binary_search(&e).is_ok();
        let unknown: Vec<Elem> = (0..n as Elem).filter(|&c| !is_known(c)).collect();
        let ne_prime = Relation::collect(
            2,
            db.ne_pairs()
                .iter()
                .filter(|&&(a, b)| !(is_known(a) && is_known(b)))
                .flat_map(|&(a, b)| [vec![a, b], vec![b, a]]),
        );
        NeStore::Virtual { unknown, ne_prime }
    }

    /// Is `¬(a = b)` an axiom?
    pub fn contains(&self, a: Elem, b: Elem) -> bool {
        match self {
            NeStore::Explicit { pairs } => pairs.contains(&[a, b]),
            NeStore::Virtual { unknown, ne_prime } => {
                if ne_prime.contains(&[a, b]) {
                    return true;
                }
                a != b && unknown.binary_search(&a).is_err() && unknown.binary_search(&b).is_err()
            }
        }
    }

    /// Number of stored tuples — the space proxy benchmarked in E9
    /// (unknown-list entries count as one each).
    pub fn stored_entries(&self) -> usize {
        match self {
            NeStore::Explicit { pairs } => pairs.len(),
            NeStore::Virtual { unknown, ne_prime } => unknown.len() + ne_prime.len(),
        }
    }

    /// Materializes the full symmetric pair relation (used to check the
    /// two representations agree, and to hand the algebra backend a scan).
    pub fn to_relation(&self, num_consts: usize) -> Relation {
        match self {
            NeStore::Explicit { pairs } => pairs.clone(),
            NeStore::Virtual { .. } => {
                let mut tuples = Vec::new();
                for a in 0..num_consts as Elem {
                    for b in 0..num_consts as Elem {
                        if a != b && self.contains(a, b) {
                            tuples.push(vec![a, b]);
                        }
                    }
                }
                Relation::collect(2, tuples)
            }
        }
    }

    /// The defining formula of the virtual representation:
    /// `NE(x, y) ≡ NE′(x, y) ∨ (¬U(x) ∧ ¬U(y) ∧ ¬(x = y))`, as a formula
    /// over predicates `ne_prime` and `u` with the given argument terms.
    /// Used by the engine's virtual-NE mode to expand `NE` atoms in `Q̂`.
    pub fn defining_formula(ne_prime: PredId, u: PredId, a: Term, b: Term) -> Formula {
        Formula::or(vec![
            Formula::atom(ne_prime, [a, b]),
            Formula::and(vec![
                Formula::not(Formula::atom(u, [a])),
                Formula::not(Formula::atom(u, [b])),
                Formula::not(Formula::Eq(a, b)),
            ]),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_logic::{ConstId, Vocabulary};

    /// 6 constants: 0..4 pairwise distinct ("known"), 4 and 5 are nulls;
    /// additionally we know null 4 ≠ constant 0.
    fn db() -> CwDatabase {
        let mut voc = Vocabulary::new();
        let ids = voc
            .add_consts(["k0", "k1", "k2", "k3", "u4", "u5"])
            .unwrap();
        let known = &ids[..4];
        CwDatabase::builder(voc)
            .pairwise_unique(known)
            .unique(ids[4], ids[0])
            .build()
            .unwrap()
    }

    #[test]
    fn representations_agree() {
        let db = db();
        let explicit = NeStore::explicit(&db);
        let virt = NeStore::virtualized(&db);
        for a in 0..6 {
            for b in 0..6 {
                assert_eq!(
                    explicit.contains(a, b),
                    virt.contains(a, b),
                    "disagreement at ({a},{b})"
                );
                assert_eq!(explicit.contains(a, b), db.is_ne(ConstId(a), ConstId(b)));
            }
        }
        assert_eq!(explicit.to_relation(6), virt.to_relation(6));
    }

    #[test]
    fn virtual_is_smaller_on_mostly_known_data() {
        let db = db();
        let explicit = NeStore::explicit(&db);
        let virt = NeStore::virtualized(&db);
        // Explicit: (C(4,2)+1)*2 = 14 tuples. Virtual: 2 unknowns + 2
        // oriented NE′ tuples = 4 entries.
        assert_eq!(explicit.stored_entries(), 14);
        assert_eq!(virt.stored_entries(), 4);
    }

    #[test]
    fn fully_specified_has_empty_virtual_side() {
        let mut voc = Vocabulary::new();
        voc.add_consts(["a", "b", "c"]).unwrap();
        let db = CwDatabase::builder(voc).fully_specified().build().unwrap();
        let virt = NeStore::virtualized(&db);
        match &virt {
            NeStore::Virtual { unknown, ne_prime } => {
                assert!(unknown.is_empty());
                assert!(ne_prime.is_empty());
            }
            other => panic!("expected virtual store, got {other:?}"),
        }
        // NE(x,y) ≡ x ≠ y, as the paper says.
        assert!(virt.contains(0, 1));
        assert!(!virt.contains(2, 2));
    }

    #[test]
    fn no_axioms_means_everything_unknown() {
        let mut voc = Vocabulary::new();
        voc.add_consts(["a", "b"]).unwrap();
        let db = CwDatabase::builder(voc).build().unwrap();
        let virt = NeStore::virtualized(&db);
        assert!(!virt.contains(0, 1));
        // One constant may sit in the (vacuous) known clique; the other is
        // unknown — and no pair is reported distinct.
        assert_eq!(virt.stored_entries(), 1);
        assert!(virt.to_relation(2).is_empty());
    }

    #[test]
    fn known_unknown_pair_not_ne_unless_axiom() {
        let db = db();
        let virt = NeStore::virtualized(&db);
        // u4 ≠ k0 is an axiom → in NE.
        assert!(virt.contains(4, 0));
        // u4 vs k1: no axiom → not in NE (u4 might equal k1).
        assert!(!virt.contains(4, 1));
        // u4 vs u5: no axiom → not in NE.
        assert!(!virt.contains(4, 5));
    }
}
