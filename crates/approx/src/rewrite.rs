//! The query transformation `Q ↦ Q̂` of §5.
//!
//! After pushing negations to the atoms, the only negative contexts left
//! are `¬(t₁ = t₂)` and `¬P(t…)`. The first becomes `NE(t₁, t₂)`; the
//! second becomes the provable-disagreement formula `α_P(t…)`, either as a
//! scan of a materialized relation ([`AlphaMode::Materialized`], following
//! Theorem 14's "treat the subformulas α_P(x) as if they were atomic
//! formulas") or as the literal Lemma 10 formula
//! ([`AlphaMode::Lemma10`]). Negated atoms of *quantified* predicate
//! variables always take the formula route — there is nothing to
//! materialize for them.
//!
//! Note that the result `Q̂` contains **no negations at all**: this is why
//! positive queries rewrite to themselves (Theorem 13) and why the
//! approximation is sound (Theorem 11).

use qld_logic::builders::{alpha_p, alpha_so, VarGen};
use qld_logic::nnf::to_nnf;
use qld_logic::{Formula, PredId, Query};

/// How `¬P(x)` is realized in `Q̂`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlphaMode {
    /// `¬P(x)` becomes a scan of the pre-computed `α_P` relation.
    #[default]
    Materialized,
    /// `¬P(x)` becomes the `O(k log k)` first-order formula of Lemma 10.
    Lemma10,
}

/// Rewrites a query body (already NNF-normalized inside) into `Q̂`.
///
/// * `ne` — the `NE` predicate of the extended vocabulary;
/// * `alpha` — for [`AlphaMode::Materialized`], `alpha[p]` is the
///   predicate holding the materialized `α_P` relation for vocabulary
///   predicate `p`.
pub fn rewrite_query(query: &Query, ne: PredId, alpha: &[PredId], mode: AlphaMode) -> Query {
    let body = to_nnf(query.body());
    let max_var = body
        .max_var()
        .into_iter()
        .chain(query.head().iter().copied())
        .max();
    let mut gen = VarGen::after(max_var);
    let rewritten = rewrite(&body, ne, alpha, mode, &mut gen);
    Query::new(query.head().to_vec(), rewritten)
        .expect("rewriting preserves the free variables of the body")
}

fn rewrite(
    f: &Formula,
    ne: PredId,
    alpha: &[PredId],
    mode: AlphaMode,
    gen: &mut VarGen,
) -> Formula {
    match f {
        Formula::True
        | Formula::False
        | Formula::Atom(..)
        | Formula::SoAtom(..)
        | Formula::Eq(..) => f.clone(),
        Formula::Not(inner) => match &**inner {
            Formula::Eq(a, b) => Formula::atom(ne, [*a, *b]),
            Formula::Atom(p, ts) => match mode {
                AlphaMode::Materialized => Formula::Atom(alpha[p.index()], ts.clone()),
                AlphaMode::Lemma10 => alpha_p(*p, ts.len(), ne, ts, gen),
            },
            Formula::SoAtom(r, ts) => alpha_so(*r, ts.len(), ne, ts, gen),
            other => unreachable!("not in NNF: ¬({other:?})"),
        },
        Formula::And(fs) => Formula::And(
            fs.iter()
                .map(|g| rewrite(g, ne, alpha, mode, gen))
                .collect(),
        ),
        Formula::Or(fs) => Formula::Or(
            fs.iter()
                .map(|g| rewrite(g, ne, alpha, mode, gen))
                .collect(),
        ),
        Formula::Implies(..) | Formula::Iff(..) => {
            unreachable!("NNF eliminates implications")
        }
        Formula::Exists(v, g) => Formula::Exists(*v, Box::new(rewrite(g, ne, alpha, mode, gen))),
        Formula::Forall(v, g) => Formula::Forall(*v, Box::new(rewrite(g, ne, alpha, mode, gen))),
        Formula::SoExists(r, k, g) => {
            Formula::SoExists(*r, *k, Box::new(rewrite(g, ne, alpha, mode, gen)))
        }
        Formula::SoForall(r, k, g) => {
            Formula::SoForall(*r, *k, Box::new(rewrite(g, ne, alpha, mode, gen)))
        }
    }
}

/// Does the formula contain any negation? (`Q̂` never does; used in tests
/// and by Theorem 13's "positive queries rewrite to themselves".)
pub fn negation_free(f: &Formula) -> bool {
    match f {
        Formula::Not(_) => false,
        Formula::True
        | Formula::False
        | Formula::Atom(..)
        | Formula::SoAtom(..)
        | Formula::Eq(..) => true,
        Formula::And(fs) | Formula::Or(fs) => fs.iter().all(negation_free),
        Formula::Implies(p, q) | Formula::Iff(p, q) => negation_free(p) && negation_free(q),
        Formula::Exists(_, g)
        | Formula::Forall(_, g)
        | Formula::SoExists(_, _, g)
        | Formula::SoForall(_, _, g) => negation_free(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_logic::parser::parse_query;
    use qld_logic::Vocabulary;

    fn setup() -> (Vocabulary, PredId, Vec<PredId>) {
        let mut voc = Vocabulary::new();
        voc.add_consts(["a", "b"]).unwrap();
        voc.add_pred("R", 2).unwrap();
        voc.add_pred("M", 1).unwrap();
        let ne = voc.add_pred("NE", 2).unwrap();
        let alpha = vec![
            voc.add_pred("ALPHA_R", 2).unwrap(),
            voc.add_pred("ALPHA_M", 1).unwrap(),
        ];
        (voc, ne, alpha)
    }

    #[test]
    fn positive_queries_unchanged() {
        let (voc, ne, alpha) = setup();
        let q = parse_query(&voc, "(x) . exists y. R(x, y) & M(y)").unwrap();
        for mode in [AlphaMode::Materialized, AlphaMode::Lemma10] {
            let qh = rewrite_query(&q, ne, &alpha, mode);
            assert_eq!(qh, q, "positive query must be a fixpoint ({mode:?})");
        }
    }

    #[test]
    fn inequality_becomes_ne() {
        let (voc, ne, alpha) = setup();
        let q = parse_query(&voc, "(x, y) . R(x, y) & x != y").unwrap();
        let qh = rewrite_query(&q, ne, &alpha, AlphaMode::Materialized);
        let printed = qld_logic::display::display_query(&voc, &qh).to_string();
        assert!(printed.contains("NE("), "got {printed}");
        assert!(negation_free(qh.body()));
    }

    #[test]
    fn negated_atom_becomes_alpha_scan() {
        let (voc, ne, alpha) = setup();
        let q = parse_query(&voc, "(x) . !M(x)").unwrap();
        let qh = rewrite_query(&q, ne, &alpha, AlphaMode::Materialized);
        let printed = qld_logic::display::display_query(&voc, &qh).to_string();
        assert_eq!(printed, "(x0) . ALPHA_M(x0)");
    }

    #[test]
    fn lemma10_mode_builds_formula() {
        let (voc, ne, alpha) = setup();
        let q = parse_query(&voc, "(x) . !M(x)").unwrap();
        let qh = rewrite_query(&q, ne, &alpha, AlphaMode::Lemma10);
        assert!(negation_free(qh.body()));
        // The α formula quantifies and mentions NE.
        assert!(qh.body().size() > 10);
        qh.check(&voc).unwrap();
    }

    #[test]
    fn implication_negations_resolved() {
        let (voc, ne, alpha) = setup();
        // M(x) → R(x,x): the antecedent is implicitly negated.
        let q = parse_query(&voc, "(x) . M(x) -> R(x, x)").unwrap();
        let qh = rewrite_query(&q, ne, &alpha, AlphaMode::Materialized);
        assert!(negation_free(qh.body()));
        let printed = qld_logic::display::display_query(&voc, &qh).to_string();
        assert!(printed.contains("ALPHA_M"), "got {printed}");
    }

    #[test]
    fn universal_quantifiers_survive() {
        let (voc, ne, alpha) = setup();
        let q = parse_query(&voc, "forall x. M(x) | !R(x, x)").unwrap();
        let qh = rewrite_query(&q, ne, &alpha, AlphaMode::Materialized);
        assert!(matches!(qh.body(), Formula::Forall(..)));
        assert!(negation_free(qh.body()));
    }

    #[test]
    fn second_order_negated_predvar_gets_alpha_formula() {
        let (voc, ne, alpha) = setup();
        let q = parse_query(&voc, "exists2 ?S:1. exists x. !?S(x) & M(x)").unwrap();
        for mode in [AlphaMode::Materialized, AlphaMode::Lemma10] {
            let qh = rewrite_query(&q, ne, &alpha, mode);
            assert!(negation_free(qh.body()), "mode {mode:?}");
            qh.check(&voc).unwrap();
        }
    }

    #[test]
    fn rewriting_is_idempotent_on_output() {
        let (voc, ne, alpha) = setup();
        let q = parse_query(&voc, "(x) . !M(x) & x != a").unwrap();
        let qh = rewrite_query(&q, ne, &alpha, AlphaMode::Materialized);
        let qhh = rewrite_query(&qh, ne, &alpha, AlphaMode::Materialized);
        assert_eq!(qh, qhh);
    }
}
