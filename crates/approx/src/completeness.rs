//! The paper's completeness criteria for the §5 approximation, as
//! checkable predicates.
//!
//! Theorem 11 makes the approximation *sound* unconditionally:
//! `Â(Q, LB) ⊆ Q(LB)`. Completeness — the reverse inclusion, which turns
//! the cheap polynomial answer into the exact certain answers — holds in
//! exactly two situations the paper identifies:
//!
//! * **Theorem 12** — the database is *fully specified* (every pair of
//!   distinct constants carries a uniqueness axiom). Then by Corollary 2
//!   the logical database behaves like the physical database `Ph₁(LB)`,
//!   and the approximation loses nothing.
//! * **Theorem 13** — the query is *positive* (its NNF contains no
//!   negation). Then `Q̂ = Q` and evaluation over `Ph₂(LB)` is already
//!   exact.
//!
//! [`exactness_theorem`] is the decision procedure a certifying engine
//! needs: given a database and a query it names the theorem (if any) that
//! licenses treating the §5 answer as exact. `qld_engine`'s `Auto` mode is
//! built directly on it.

use qld_core::CwDatabase;
use qld_logic::{Query, QueryClass};
use std::fmt;

/// Which completeness theorem (if any) makes the §5 approximation exact
/// for a given database/query pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompletenessTheorem {
    /// Theorem 12: the database is fully specified, so the approximation
    /// is complete regardless of the query (and Corollary 2 applies).
    FullySpecified,
    /// Theorem 13: the query is positive first-order, so `Q̂ = Q` and the
    /// approximation is complete regardless of the database.
    PositiveQuery,
}

impl CompletenessTheorem {
    /// The paper's name for the result.
    pub fn name(self) -> &'static str {
        match self {
            CompletenessTheorem::FullySpecified => "Theorem 12",
            CompletenessTheorem::PositiveQuery => "Theorem 13",
        }
    }
}

impl fmt::Display for CompletenessTheorem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Returns the theorem that proves the §5 approximation *exact* on this
/// database/query pair, or `None` if no completeness theorem applies (the
/// approximation is then only a sound lower bound, Theorem 11).
///
/// The query-side test is deliberately conservative: Theorem 13 is
/// claimed only for positive **first-order** queries
/// ([`QueryClass::PositiveFirstOrder`]), the fragment the paper states it
/// for. Positive second-order queries fall through to `None`.
pub fn exactness_theorem(db: &CwDatabase, query: &Query) -> Option<CompletenessTheorem> {
    if db.is_fully_specified() {
        Some(CompletenessTheorem::FullySpecified)
    } else if query.class() == QueryClass::PositiveFirstOrder {
        Some(CompletenessTheorem::PositiveQuery)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_logic::parser::parse_query;
    use qld_logic::Vocabulary;

    fn partial_db() -> CwDatabase {
        let mut voc = Vocabulary::new();
        let ids = voc.add_consts(["a", "b", "u"]).unwrap();
        let p = voc.add_pred("P", 1).unwrap();
        CwDatabase::builder(voc)
            .fact(p, &[ids[0]])
            .unique(ids[0], ids[1])
            .build()
            .unwrap()
    }

    fn full_db() -> CwDatabase {
        let mut voc = Vocabulary::new();
        let ids = voc.add_consts(["a", "b"]).unwrap();
        let p = voc.add_pred("P", 1).unwrap();
        CwDatabase::builder(voc)
            .fact(p, &[ids[0]])
            .fully_specified()
            .build()
            .unwrap()
    }

    #[test]
    fn fully_specified_wins_for_any_query() {
        let db = full_db();
        let q = parse_query(db.voc(), "(x) . !P(x)").unwrap();
        assert_eq!(
            exactness_theorem(&db, &q),
            Some(CompletenessTheorem::FullySpecified)
        );
    }

    #[test]
    fn positive_queries_certified_on_partial_databases() {
        let db = partial_db();
        let q = parse_query(db.voc(), "(x) . P(x)").unwrap();
        assert_eq!(
            exactness_theorem(&db, &q),
            Some(CompletenessTheorem::PositiveQuery)
        );
    }

    #[test]
    fn negation_on_partial_database_is_uncertified() {
        let db = partial_db();
        let q = parse_query(db.voc(), "(x) . !P(x)").unwrap();
        assert_eq!(exactness_theorem(&db, &q), None);
    }

    #[test]
    fn positive_second_order_is_uncertified() {
        let db = partial_db();
        let q = parse_query(db.voc(), "exists2 ?S:1. exists x. ?S(x) & P(x)").unwrap();
        assert!(q.is_positive());
        assert_eq!(exactness_theorem(&db, &q), None);
    }

    #[test]
    fn names() {
        assert_eq!(CompletenessTheorem::FullySpecified.name(), "Theorem 12");
        assert_eq!(CompletenessTheorem::PositiveQuery.to_string(), "Theorem 13");
    }
}
