//! The polynomial-time disagreement test behind `α_P` (Lemma 10 /
//! Theorem 14).
//!
//! Two tuples of constants `c` and `d` *disagree* with respect to the
//! theory when `Unique(T) ∧ c = d` is unsatisfiable: asserting the
//! component-wise equalities `cᵢ = dᵢ` and closing under equivalence
//! forces two constants with a uniqueness axiom between them to coincide.
//! Graph-theoretically (the paper's formulation): some two vertices of the
//! graph `G_{c,d}` — whose edges are the pairs `(cᵢ, dᵢ)` — are connected
//! and carry a `¬(·=·)` axiom.
//!
//! The test here is union-find over the (at most `2k`) constants of the
//! two tuples, then a probe of every NE pair within a component:
//! `O(k α(k) + k²)` per pair of tuples, comfortably the polynomial bound
//! Theorem 14 needs.

use qld_core::CwDatabase;
use qld_logic::{ConstId, PredId};
use qld_physical::{Elem, Relation, TupleSpace};

/// A small union-find over dense keys with path halving.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    /// Resets to `n` singleton sets, reusing the existing allocation — the
    /// incremental-insertion path: hot loops (the `α_P` maintenance scans)
    /// keep one union-find and re-seed it per tuple pair instead of
    /// allocating a fresh one.
    pub fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n as u32);
    }

    /// Finds the representative of `x`, halving paths as it walks.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Unions the sets of `a` and `b`.
    pub fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }

    /// Are `a` and `b` in the same set?
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Reusable buffers for repeated disagreement tests: the vertex list of
/// `G_{c,d}` and the union-find over it. The maintenance scans (building
/// `α_P`, filtering it after a fact insertion, extending it after a new
/// uniqueness axiom) call [`DisagreeScratch::disagrees`] thousands of
/// times; re-seeding one scratch per pair keeps the inner loop
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct DisagreeScratch {
    verts: Vec<Elem>,
    uf: UnionFind,
}

impl DisagreeScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> DisagreeScratch {
        DisagreeScratch::default()
    }

    /// Do the constant tuples `c` and `d` disagree with respect to the
    /// database's uniqueness axioms? (Elements are `ConstId` indices.)
    pub fn disagrees(&mut self, db: &CwDatabase, c: &[Elem], d: &[Elem]) -> bool {
        debug_assert_eq!(c.len(), d.len());
        // Collect the vertices of G_{c,d}: the constants mentioned by
        // either tuple, locally renumbered for the union-find.
        self.verts.clear();
        self.verts.extend(c.iter().chain(d.iter()).copied());
        self.verts.sort_unstable();
        self.verts.dedup();
        let verts = &self.verts;
        let local = |e: Elem| verts.binary_search(&e).expect("collected above") as u32;
        self.uf.reset(verts.len());
        for (a, b) in c.iter().zip(d.iter()) {
            self.uf.union(local(*a), local(*b));
        }
        // Unsatisfiable iff some NE pair lies within one equivalence
        // class. Only pairs whose both endpoints are vertices can collide.
        for (i, &a) in verts.iter().enumerate() {
            for &b in &verts[i + 1..] {
                if db.is_ne(ConstId(a), ConstId(b)) && self.uf.same(local(a), local(b)) {
                    return true;
                }
            }
        }
        false
    }
}

/// Do the constant tuples `c` and `d` disagree with respect to the
/// database's uniqueness axioms? (Elements are `ConstId` indices.)
/// One-shot convenience over [`DisagreeScratch::disagrees`].
pub fn disagrees(db: &CwDatabase, c: &[Elem], d: &[Elem]) -> bool {
    DisagreeScratch::new().disagrees(db, c, d)
}

/// Materializes the `α_P` relation: every tuple over `C^k` that disagrees
/// with **all** facts of `P`. This is the set the rewritten `¬P(x)` scans
/// (Theorem 14 treats `α_P` as an atomic formula decided in polynomial
/// time; for fixed arity the whole relation is polynomial in `|C|`).
pub fn alpha_relation(db: &CwDatabase, p: PredId) -> Relation {
    let arity = db.voc().pred_arity(p);
    let consts: Vec<Elem> = (0..db.num_consts() as Elem).collect();
    let facts = db.facts(p);
    let mut scratch = DisagreeScratch::new();
    let tuples = TupleSpace::new(&consts, arity)
        .filter(|c| facts.iter().all(|d| scratch.disagrees(db, c, d)))
        .map(Vec::into_boxed_slice)
        .collect();
    Relation::from_tuples(arity, tuples)
}

/// The tuples that newly *enter* `α_P` after uniqueness axioms were added
/// to `db` (which must already carry the additions).
///
/// Incremental by monotonicity: more axioms can only create more
/// disagreement, so every tuple already in `α_P` stays in it and only the
/// complement needs rechecking — the scan skips `|α_P|` of the `|C|^k`
/// candidate tuples and re-tests just the rest against the facts.
pub fn alpha_additions_for_ne(
    db: &CwDatabase,
    p: PredId,
    current: &Relation,
    scratch: &mut DisagreeScratch,
) -> Vec<Vec<Elem>> {
    let arity = db.voc().pred_arity(p);
    let consts: Vec<Elem> = (0..db.num_consts() as Elem).collect();
    let facts = db.facts(p);
    TupleSpace::new(&consts, arity)
        .filter(|c| !current.contains(c))
        .filter(|c| facts.iter().all(|d| scratch.disagrees(db, c, d)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_logic::Vocabulary;

    fn db() -> CwDatabase {
        let mut voc = Vocabulary::new();
        // a, b, c pairwise distinct; u, v unconstrained nulls.
        let ids = voc.add_consts(["a", "b", "c", "u", "v"]).unwrap();
        let p = voc.add_pred("P", 2).unwrap();
        CwDatabase::builder(voc)
            .fact(p, &[ids[0], ids[1]])
            .pairwise_unique(&ids[..3])
            .build()
            .unwrap()
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.same(0, 1));
        uf.union(0, 1);
        uf.union(3, 4);
        assert!(uf.same(0, 1));
        assert!(uf.same(3, 4));
        assert!(!uf.same(1, 3));
        uf.union(1, 3);
        assert!(uf.same(0, 4));
    }

    #[test]
    fn distinct_known_constants_disagree() {
        let db = db();
        // (a,?) vs (b,?) with a≠b axiom: equating component-wise forces
        // a=b — unsatisfiable, so they disagree.
        assert!(disagrees(&db, &[0, 3], &[1, 3]));
    }

    #[test]
    fn null_does_not_disagree_with_known() {
        let db = db();
        // (u) vs (a): u has no uniqueness axioms, u=a is satisfiable.
        assert!(!disagrees(&db, &[3], &[0]));
        // (u) vs (v): two nulls can be equal.
        assert!(!disagrees(&db, &[3], &[4]));
    }

    #[test]
    fn transitive_disagreement_through_chain() {
        let db = db();
        // c = (a, u), d = (u, b): equalities a=u and u=b force a=b,
        // contradicting a≠b — disagreement via the *connectivity* of
        // G_{c,d}, not via any single coordinate.
        assert!(disagrees(&db, &[0, 3], &[3, 1]));
    }

    #[test]
    fn repeated_variable_pattern() {
        let db = db();
        // c = (u, u) vs d = (a, b): u=a and u=b force a=b — disagree.
        assert!(disagrees(&db, &[3, 3], &[0, 1]));
        // c = (u, u) vs d = (a, a): satisfiable (u=a).
        assert!(!disagrees(&db, &[3, 3], &[0, 0]));
    }

    #[test]
    fn identical_tuples_never_disagree() {
        let db = db();
        for t in [[0, 1], [3, 4], [2, 2]] {
            assert!(!disagrees(&db, &t, &t));
        }
    }

    #[test]
    fn alpha_relation_contents() {
        let db = db();
        let p = db.voc().pred_id("P").unwrap();
        let alpha = alpha_relation(&db, p);
        // (b,a) disagrees with the only fact (a,b): b≠a. In α.
        assert!(alpha.contains(&[1, 0]));
        // (a,b) is the fact itself: agrees. Not in α.
        assert!(!alpha.contains(&[0, 1]));
        // (a,u): u might be b, agreeing with (a,b). Not in α.
        assert!(!alpha.contains(&[0, 3]));
        // (b,c) disagrees (first component b≠a). In α.
        assert!(alpha.contains(&[1, 2]));
        // (u,v): could be (a,b). Not in α.
        assert!(!alpha.contains(&[3, 4]));
    }

    #[test]
    fn scratch_reuse_matches_one_shot() {
        let db = db();
        let mut scratch = DisagreeScratch::new();
        let tuples: &[&[Elem]] = &[&[0, 3], &[1, 3], &[3, 3], &[0, 1], &[2, 4]];
        for c in tuples {
            for d in tuples {
                assert_eq!(
                    scratch.disagrees(&db, c, d),
                    disagrees(&db, c, d),
                    "scratch diverged on {c:?} vs {d:?}"
                );
            }
        }
    }

    #[test]
    fn incremental_alpha_after_fact_insert_matches_rebuild() {
        let mut db = db();
        let p = db.voc().pred_id("P").unwrap();
        let mut alpha = alpha_relation(&db, p);
        // Insert a fact: α_P can only shrink, by exactly the tuples that
        // fail to disagree with the new fact.
        let new_fact: Vec<Elem> = vec![2, 3]; // P(c, u)
        db.insert_fact(
            p,
            &[
                qld_logic::ConstId(new_fact[0]),
                qld_logic::ConstId(new_fact[1]),
            ],
        )
        .unwrap();
        let mut scratch = DisagreeScratch::new();
        alpha.retain(|t| scratch.disagrees(&db, t, &new_fact));
        assert_eq!(alpha, alpha_relation(&db, p), "retain ≠ rebuild");
    }

    #[test]
    fn incremental_alpha_after_ne_insert_matches_rebuild() {
        let mut db = db();
        let p = db.voc().pred_id("P").unwrap();
        let alpha_old = alpha_relation(&db, p);
        // New axiom u ≠ a: disagreement (and hence α_P) can only grow.
        db.insert_ne(qld_logic::ConstId(3), qld_logic::ConstId(0))
            .unwrap();
        let mut scratch = DisagreeScratch::new();
        let additions = alpha_additions_for_ne(&db, p, &alpha_old, &mut scratch);
        let merged = Relation::collect(
            alpha_old.arity(),
            alpha_old
                .iter()
                .map(<[Elem]>::to_vec)
                .chain(additions.iter().cloned()),
        );
        let rebuilt = alpha_relation(&db, p);
        assert!(!additions.is_empty(), "the new axiom must grow α_P");
        assert!(alpha_old.is_subset_of(&rebuilt), "monotonicity");
        assert_eq!(merged, rebuilt, "complement recheck ≠ rebuild");
    }

    #[test]
    fn alpha_of_empty_predicate_is_everything() {
        let mut voc = Vocabulary::new();
        voc.add_consts(["a", "b"]).unwrap();
        let p = voc.add_pred("P", 1).unwrap();
        let db = CwDatabase::builder(voc).build().unwrap();
        let alpha = alpha_relation(&db, p);
        // No facts → every tuple vacuously disagrees with all of them:
        // the completion axiom ∀x ¬P(x) makes ¬P certain everywhere.
        assert_eq!(alpha.len(), 2);
    }
}
