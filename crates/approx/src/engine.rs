//! The approximate evaluation engine: `Â(Q, LB) = Q̂(Ph₂(LB))`.

use crate::disagree::{alpha_additions_for_ne, alpha_relation, DisagreeScratch};
use crate::ne_store::NeStore;
use crate::rewrite::{rewrite_query, AlphaMode};
use qld_algebra::{compile::eval_via_algebra, CompileError, ExecOptions};
use qld_core::CwDatabase;
use qld_logic::{Formula, LogicError, PredId, Query, Vocabulary};
use qld_physical::Elem;
use qld_physical::{eval_query, PhysicalDb, Relation};
use std::fmt;

/// Errors from the approximation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApproxError {
    /// Ill-formed query.
    Logic(LogicError),
    /// The algebra backend refused the rewritten query.
    Compile(CompileError),
}

impl fmt::Display for ApproxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxError::Logic(e) => write!(f, "{e}"),
            ApproxError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ApproxError {}

impl From<LogicError> for ApproxError {
    fn from(e: LogicError) -> Self {
        ApproxError::Logic(e)
    }
}

impl From<CompileError> for ApproxError {
    fn from(e: CompileError) -> Self {
        ApproxError::Compile(e)
    }
}

/// Which machinery executes the rewritten query `Q̂`.
#[derive(Debug, Clone, Copy, Default)]
pub enum Backend {
    /// The naive Tarskian evaluator of `qld-physical`.
    #[default]
    Naive,
    /// Compile `Q̂` to relational algebra and run it on the engine of
    /// `qld-algebra` — §5's "top of a standard database management
    /// system". First-order queries only.
    Algebra(ExecOptions),
}

/// A logical database prepared for approximate querying.
///
/// Construction materializes, in polynomial time:
/// * `Ph₂(LB)` — the facts plus the `NE` relation;
/// * one `α_P` relation per predicate (the provably-false tuples);
/// * optionally the virtual-NE relations `NE′` and `U`.
#[derive(Debug, Clone)]
pub struct ApproxEngine {
    voc: Vocabulary,
    db: PhysicalDb,
    ne: PredId,
    alpha: Vec<PredId>,
    ne_prime: PredId,
    u: PredId,
    virtual_ne: bool,
}

// The §5 engine is embedded in snapshots served across threads by the
// concurrent layer; enforce shareability at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ApproxEngine>();
};

impl ApproxEngine {
    /// Builds the engine with the explicit `NE` relation (the default).
    pub fn new(cw: &CwDatabase) -> ApproxEngine {
        Self::build(cw, false)
    }

    /// Builds the engine with the virtual `NE` representation: `NE` stays
    /// empty; `Q̂`'s `NE(x,y)` atoms expand into
    /// `NE′(x,y) ∨ (¬U(x) ∧ ¬U(y) ∧ ¬(x=y))`.
    pub fn with_virtual_ne(cw: &CwDatabase) -> ApproxEngine {
        Self::build(cw, true)
    }

    fn build(cw: &CwDatabase, virtual_ne: bool) -> ApproxEngine {
        let mut voc = cw.voc().clone();
        let ne = voc.add_fresh_pred("NE", 2);
        let alpha: Vec<PredId> = cw
            .voc()
            .preds()
            .map(|p| {
                let name = format!("ALPHA_{}", cw.voc().pred_name(p));
                let arity = cw.voc().pred_arity(p);
                voc.add_fresh_pred(&name, arity)
            })
            .collect();
        let ne_prime = voc.add_fresh_pred("NE_PRIME", 2);
        let u = voc.add_fresh_pred("U", 1);

        let n = cw.num_consts() as u32;
        let mut builder = PhysicalDb::builder(&voc).domain(0..n);
        for c in voc.consts() {
            builder = builder.constant(c, c.0);
        }
        for p in cw.voc().preds() {
            builder = builder.relation(p, cw.facts(p).clone());
            builder = builder.relation(alpha[p.index()], alpha_relation(cw, p));
        }
        if virtual_ne {
            let store = NeStore::virtualized(cw);
            if let NeStore::Virtual {
                unknown,
                ne_prime: npr,
            } = &store
            {
                builder =
                    builder.relation(u, Relation::collect(1, unknown.iter().map(|&e| vec![e])));
                builder = builder.relation(ne_prime, npr.clone());
            }
            // NE left empty: every probe must go through the expansion.
        } else {
            let store = NeStore::explicit(cw);
            builder = builder.relation(ne, store.to_relation(cw.num_consts()));
        }
        ApproxEngine {
            db: builder
                .build()
                .expect("extended interpretation is valid by construction"),
            voc,
            ne,
            alpha,
            ne_prime,
            u,
            virtual_ne,
        }
    }

    /// Applies a database delta to the materialized §5 structures in
    /// place — **no** re-derivation of `Ph₂(LB)`, the `α_P` relations, or
    /// the `NE` store from scratch.
    ///
    /// `cw` must be the closed-world database *after* the delta;
    /// `new_facts` the facts that were actually inserted (duplicates
    /// filtered out by the caller), and `new_ne` the uniqueness axioms
    /// actually added (normalized `(lo, hi)` pairs). The refresh is
    /// incremental in both directions the theory permits:
    ///
    /// * a new fact of `P` extends the base relation by a sorted insert
    ///   and can only *shrink* `α_P` — one retain pass keeps exactly the
    ///   tuples that disagree with the new fact (nothing else changes);
    /// * a new axiom extends the `NE` store by insertion (explicit mode)
    ///   and can only *grow* every `α_P` — only the complement of the
    ///   current `α_P` is rechecked ([`alpha_additions_for_ne`]). In
    ///   virtual-`NE` mode the `U`/`NE′` relations are re-derived (the
    ///   known-clique heuristic is non-local, and both relations are
    ///   small by design on the mostly-known databases the mode targets).
    ///
    /// The result is equal to `ApproxEngine::new(cw)` (property-tested in
    /// the delta differential suite); the cost is proportional to what
    /// changed, not to the database.
    pub fn apply_delta(
        &mut self,
        cw: &CwDatabase,
        new_facts: &[(PredId, Box<[Elem]>)],
        new_ne: &[(Elem, Elem)],
    ) {
        let mut scratch = DisagreeScratch::new();
        for (p, tuple) in new_facts {
            self.db
                .insert_tuple(*p, tuple)
                .expect("delta fact was validated against the vocabulary");
            let alpha_p = self.alpha[p.index()];
            self.db
                .retain_tuples(alpha_p, |t| scratch.disagrees(cw, t, tuple));
        }
        if new_ne.is_empty() {
            return;
        }
        if self.virtual_ne {
            // The known-clique classification can change globally; rebuild
            // the (small) virtual store and swap the two relations.
            if let NeStore::Virtual { unknown, ne_prime } = NeStore::virtualized(cw) {
                self.db
                    .set_relation(
                        self.u,
                        Relation::collect(1, unknown.iter().map(|&e| vec![e])),
                    )
                    .expect("U stays within the domain");
                self.db
                    .set_relation(self.ne_prime, ne_prime)
                    .expect("NE' stays within the domain");
            }
        } else {
            for &(a, b) in new_ne {
                for pair in [[a, b], [b, a]] {
                    self.db
                        .insert_tuple(self.ne, &pair)
                        .expect("delta axiom was validated against the vocabulary");
                }
            }
        }
        for p in cw.voc().preds() {
            let alpha_p = self.alpha[p.index()];
            let additions = alpha_additions_for_ne(cw, p, self.db.relation(alpha_p), &mut scratch);
            if additions.is_empty() {
                continue;
            }
            let current = self.db.relation(alpha_p);
            let merged = Relation::collect(
                current.arity(),
                current.iter().map(<[Elem]>::to_vec).chain(additions),
            );
            self.db
                .set_relation(alpha_p, merged)
                .expect("α tuples stay within the domain");
        }
    }

    /// The extended vocabulary `L′` plus the `α_P` (and virtual-NE)
    /// predicates.
    pub fn extended_voc(&self) -> &Vocabulary {
        &self.voc
    }

    /// The extended physical database the engine evaluates against.
    pub fn extended_db(&self) -> &PhysicalDb {
        &self.db
    }

    /// The `NE` predicate id in the extended vocabulary.
    pub fn ne_pred(&self) -> PredId {
        self.ne
    }

    /// The `α_P` predicate for each original predicate, indexed by
    /// `PredId`.
    pub fn alpha_preds(&self) -> &[PredId] {
        &self.alpha
    }

    /// Rewrites `Q ↦ Q̂` (checking the query first), expanding `NE` atoms
    /// when the engine is in virtual-NE mode.
    pub fn rewrite(&self, query: &Query, mode: AlphaMode) -> Result<Query, ApproxError> {
        query.check(&self.voc)?;
        let rewritten = rewrite_query(query, self.ne, &self.alpha, mode);
        if !self.virtual_ne {
            return Ok(rewritten);
        }
        let (head, body) = rewritten.into_parts();
        let expanded = self.expand_ne(&body);
        Ok(Query::new(head, expanded).expect("expansion preserves free variables"))
    }

    fn expand_ne(&self, f: &Formula) -> Formula {
        match f {
            Formula::Atom(p, ts) if *p == self.ne => {
                debug_assert_eq!(ts.len(), 2);
                NeStore::defining_formula(self.ne_prime, self.u, ts[0], ts[1])
            }
            Formula::True
            | Formula::False
            | Formula::Atom(..)
            | Formula::SoAtom(..)
            | Formula::Eq(..) => f.clone(),
            Formula::Not(g) => Formula::Not(Box::new(self.expand_ne(g))),
            Formula::And(fs) => Formula::And(fs.iter().map(|g| self.expand_ne(g)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|g| self.expand_ne(g)).collect()),
            Formula::Implies(p, q) => {
                Formula::Implies(Box::new(self.expand_ne(p)), Box::new(self.expand_ne(q)))
            }
            Formula::Iff(p, q) => {
                Formula::Iff(Box::new(self.expand_ne(p)), Box::new(self.expand_ne(q)))
            }
            Formula::Exists(v, g) => Formula::Exists(*v, Box::new(self.expand_ne(g))),
            Formula::Forall(v, g) => Formula::Forall(*v, Box::new(self.expand_ne(g))),
            Formula::SoExists(r, k, g) => Formula::SoExists(*r, *k, Box::new(self.expand_ne(g))),
            Formula::SoForall(r, k, g) => Formula::SoForall(*r, *k, Box::new(self.expand_ne(g))),
        }
    }

    /// Approximate answers with the default pipeline (materialized `α_P`,
    /// naive evaluation).
    pub fn eval(&self, query: &Query) -> Result<Relation, ApproxError> {
        self.eval_with(query, AlphaMode::Materialized, Backend::Naive)
    }

    /// Approximate answers with explicit mode and backend.
    pub fn eval_with(
        &self,
        query: &Query,
        mode: AlphaMode,
        backend: Backend,
    ) -> Result<Relation, ApproxError> {
        let rewritten = self.rewrite(query, mode)?;
        match backend {
            Backend::Naive => Ok(eval_query(&self.db, &rewritten)),
            Backend::Algebra(opts) => Ok(eval_via_algebra(&self.voc, &self.db, &rewritten, opts)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_core::{certain_answers, CwDatabase};
    use qld_logic::parser::parse_query;

    /// §2.2-flavoured database: socrates/plato/aristotle pairwise
    /// distinct; `mystery` a null. TEACHES(socrates, plato).
    fn teaching() -> CwDatabase {
        let mut voc = Vocabulary::new();
        let ids = voc
            .add_consts(["socrates", "plato", "aristotle", "mystery"])
            .unwrap();
        let teaches = voc.add_pred("TEACHES", 2).unwrap();
        CwDatabase::builder(voc)
            .fact(teaches, &[ids[0], ids[1]])
            .pairwise_unique(&ids[..3])
            .build()
            .unwrap()
    }

    const QUERIES: &[&str] = &[
        "(x) . TEACHES(socrates, x)",
        "(x) . !TEACHES(socrates, x)",
        "(x, y) . TEACHES(x, y)",
        "(x) . x != plato",
        "(x) . !TEACHES(x, x) & x != mystery",
        "exists x. TEACHES(x, plato)",
        "forall x. TEACHES(socrates, x) -> x != aristotle",
        "(x) . TEACHES(socrates, x) | x = socrates",
        "!TEACHES(plato, socrates)",
    ];

    #[test]
    fn soundness_theorem_11() {
        let db = teaching();
        let engine = ApproxEngine::new(&db);
        for input in QUERIES {
            let q = parse_query(db.voc(), input).unwrap();
            let approx = engine.eval(&q).unwrap();
            let exact = certain_answers(&db, &q).unwrap();
            assert!(
                approx.is_subset_of(&exact),
                "unsound on {input}: {approx:?} ⊄ {exact:?}"
            );
        }
    }

    #[test]
    fn completeness_on_fully_specified_theorem_12() {
        let mut voc = Vocabulary::new();
        let ids = voc.add_consts(["a", "b", "c"]).unwrap();
        let r = voc.add_pred("R", 2).unwrap();
        let db = CwDatabase::builder(voc)
            .fact(r, &[ids[0], ids[1]])
            .fact(r, &[ids[1], ids[2]])
            .fully_specified()
            .build()
            .unwrap();
        let engine = ApproxEngine::new(&db);
        for input in [
            "(x) . !R(x, x)",
            "(x, y) . R(x, y) & x != y",
            "(x) . exists y. R(x, y) & !R(y, x)",
            "forall x. !R(x, x)",
        ] {
            let q = parse_query(db.voc(), input).unwrap();
            assert_eq!(
                engine.eval(&q).unwrap(),
                certain_answers(&db, &q).unwrap(),
                "incomplete on fully specified db: {input}"
            );
        }
    }

    #[test]
    fn completeness_on_positive_queries_theorem_13() {
        let db = teaching();
        let engine = ApproxEngine::new(&db);
        for input in [
            "(x) . TEACHES(socrates, x)",
            "(x, y) . TEACHES(x, y)",
            "exists x, y. TEACHES(x, y)",
            "(x) . TEACHES(socrates, x) | TEACHES(x, socrates)",
        ] {
            let q = parse_query(db.voc(), input).unwrap();
            assert!(q.is_positive());
            assert_eq!(
                engine.eval(&q).unwrap(),
                certain_answers(&db, &q).unwrap(),
                "incomplete on positive query: {input}"
            );
        }
    }

    #[test]
    fn known_incompleteness_example() {
        // P(u) ∨ u ≠ a is a tautology over the models (excluded middle on
        // h(u) = h(a)), hence certain — but the approximation can neither
        // prove P(u) nor NE(u, a). Sound, not complete.
        let mut voc = Vocabulary::new();
        let ids = voc.add_consts(["a", "b", "u"]).unwrap();
        let p = voc.add_pred("P", 1).unwrap();
        let db = CwDatabase::builder(voc)
            .fact(p, &[ids[0]])
            .unique(ids[0], ids[1])
            .build()
            .unwrap();
        let q = parse_query(db.voc(), "P(u) | u != a").unwrap();
        let exact = certain_answers(&db, &q).unwrap();
        assert_eq!(exact.len(), 1, "the disjunction is certain");
        let engine = ApproxEngine::new(&db);
        let approx = engine.eval(&q).unwrap();
        assert!(approx.is_empty(), "the approximation must miss it");
    }

    #[test]
    fn lemma10_mode_matches_materialized() {
        let db = teaching();
        let engine = ApproxEngine::new(&db);
        for input in QUERIES {
            let q = parse_query(db.voc(), input).unwrap();
            let a = engine
                .eval_with(&q, AlphaMode::Materialized, Backend::Naive)
                .unwrap();
            let b = engine
                .eval_with(&q, AlphaMode::Lemma10, Backend::Naive)
                .unwrap();
            assert_eq!(a, b, "alpha modes disagree on {input}");
        }
    }

    #[test]
    fn algebra_backend_matches_naive() {
        let db = teaching();
        let engine = ApproxEngine::new(&db);
        for input in QUERIES {
            let q = parse_query(db.voc(), input).unwrap();
            let naive = engine.eval(&q).unwrap();
            let algebra = engine
                .eval_with(
                    &q,
                    AlphaMode::Materialized,
                    Backend::Algebra(ExecOptions::default()),
                )
                .unwrap();
            assert_eq!(naive, algebra, "backends disagree on {input}");
        }
    }

    #[test]
    fn virtual_ne_matches_explicit() {
        let db = teaching();
        let explicit = ApproxEngine::new(&db);
        let virt = ApproxEngine::with_virtual_ne(&db);
        for input in QUERIES {
            let q = parse_query(db.voc(), input).unwrap();
            for mode in [AlphaMode::Materialized, AlphaMode::Lemma10] {
                assert_eq!(
                    explicit.eval_with(&q, mode, Backend::Naive).unwrap(),
                    virt.eval_with(&q, mode, Backend::Naive).unwrap(),
                    "virtual NE disagrees on {input} ({mode:?})"
                );
            }
        }
    }

    #[test]
    fn second_order_query_soundness() {
        let db = teaching();
        let engine = ApproxEngine::new(&db);
        // ∃S: everything S contains is taught by socrates, S(plato), and
        // ¬S(aristotle) — the negated predicate-variable atom goes through
        // the α machinery.
        let q = parse_query(
            db.voc(),
            "exists2 ?S:1. (forall x. ?S(x) -> TEACHES(socrates, x)) & ?S(plato) & !?S(aristotle)",
        )
        .unwrap();
        let approx = engine.eval(&q).unwrap();
        let exact = certain_answers(&db, &q).unwrap();
        assert!(approx.is_subset_of(&exact));
    }

    #[test]
    fn apply_delta_matches_rebuild() {
        use qld_logic::ConstId;
        let db0 = teaching();
        let teaches = db0.voc().pred_id("TEACHES").unwrap();
        // A mixed delta script: facts touching the null, then new axioms
        // (including one that pins the null down), then more facts.
        let script: &[(&str, u32, u32)] = &[
            ("fact", 2, 3), // TEACHES(aristotle, mystery)
            ("fact", 3, 3), // TEACHES(mystery, mystery)
            ("ne", 3, 0),   // mystery ≠ socrates
            ("fact", 1, 0), // TEACHES(plato, socrates)
            ("ne", 3, 1),   // mystery ≠ plato
        ];
        for virtual_ne in [false, true] {
            let mut cw = db0.clone();
            let mut engine = if virtual_ne {
                ApproxEngine::with_virtual_ne(&cw)
            } else {
                ApproxEngine::new(&cw)
            };
            for &(kind, a, b) in script {
                type FactDelta = Vec<(qld_logic::PredId, Box<[Elem]>)>;
                let (new_facts, new_ne): (FactDelta, Vec<(Elem, Elem)>) = match kind {
                    "fact" => {
                        assert!(cw.insert_fact(teaches, &[ConstId(a), ConstId(b)]).unwrap());
                        (vec![(teaches, vec![a, b].into_boxed_slice())], vec![])
                    }
                    _ => {
                        assert!(cw.insert_ne(ConstId(a), ConstId(b)).unwrap());
                        (vec![], vec![(a.min(b), a.max(b))])
                    }
                };
                engine.apply_delta(&cw, &new_facts, &new_ne);
                let rebuilt = if virtual_ne {
                    ApproxEngine::with_virtual_ne(&cw)
                } else {
                    ApproxEngine::new(&cw)
                };
                assert_eq!(
                    engine.extended_db(),
                    rebuilt.extended_db(),
                    "incremental Ph₂/α/NE diverged after ({kind}, {a}, {b}), virtual={virtual_ne}"
                );
                // And the answers it produces agree too.
                for input in QUERIES {
                    let q = parse_query(cw.voc(), input).unwrap();
                    assert_eq!(
                        engine.eval(&q).unwrap(),
                        rebuilt.eval(&q).unwrap(),
                        "answers diverged on {input} after ({kind}, {a}, {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_free_delta_is_noop() {
        let db = teaching();
        let mut engine = ApproxEngine::new(&db);
        let before = engine.extended_db().clone();
        engine.apply_delta(&db, &[], &[]);
        assert_eq!(engine.extended_db(), &before);
    }

    #[test]
    fn rewrite_checks_vocabulary() {
        let db = teaching();
        let engine = ApproxEngine::new(&db);
        let mut other = Vocabulary::new();
        other.add_pred("NOPE", 1).unwrap();
        other.add_const("zzz").unwrap();
        let q = parse_query(&other, "exists x. NOPE(x)").unwrap();
        // NOPE resolves to PredId(0) = TEACHES (arity 2) in the engine's
        // vocabulary: the arity check must reject it.
        assert!(engine.rewrite(&q, AlphaMode::Materialized).is_err());
    }
}
