//! The sound approximate query-evaluation algorithm of §5.
//!
//! Exact certain-answer evaluation is co-NP-hard in the database
//! (Theorem 5), so the paper builds an approximation with Reiter's
//! desiderata: it must be **sound** (`Â(Q,LB) ⊆ Q(LB)`, Theorem 11),
//! **complete for fully specified databases** (Theorem 12), and — a bonus
//! the paper proves in Theorem 13 — **complete for positive queries**;
//! and it must cost no more than physical-database evaluation
//! (Theorem 14).
//!
//! The scheme: store `LB` as the physical database `Ph₂(LB)` (facts plus
//! the `NE` inequality relation) and compile every query `Q` to `Q̂`:
//!
//! 1. push negations to atoms (NNF);
//! 2. replace `¬(x = y)` by `NE(x, y)`;
//! 3. replace `¬P(x)` by the provable-disagreement formula `α_P(x)` of
//!    Lemma 10.
//!
//! This crate implements that pipeline twice and cross-checks the two:
//!
//! * [`ApproxEngine`] with [`AlphaMode::Materialized`] follows Theorem 14's
//!   proof and treats `α_P` as an atomic relation, materialized in
//!   polynomial time by the union-find disagreement test of
//!   [`disagree`];
//! * [`AlphaMode::Lemma10`] splices in the literal `O(k log k)` first-order
//!   formula from `qld_logic::builders::alpha_p`.
//!
//! The engine evaluates `Q̂` with either the naive Tarskian evaluator or
//! the relational-algebra backend of `qld-algebra` — the paper's "on top
//! of a standard database management system". Finally [`ne_store`]
//! implements the virtual `NE` representation
//! (`NE(x,y) ≡ NE′(x,y) ∨ (¬U(x) ∧ ¬U(y) ∧ x≠y)`) that §5 closes with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod completeness;
pub mod disagree;
pub mod engine;
pub mod ne_store;
pub mod rewrite;

pub use completeness::{exactness_theorem, CompletenessTheorem};
pub use engine::{ApproxEngine, ApproxError, Backend};
pub use ne_store::NeStore;
pub use rewrite::AlphaMode;

/// One-call convenience: approximate answers with the default pipeline
/// (materialized `α_P`, naive evaluation).
pub fn approximate_answers(
    db: &qld_core::CwDatabase,
    query: &qld_logic::Query,
) -> Result<qld_physical::Relation, ApproxError> {
    ApproxEngine::new(db).eval(query)
}
