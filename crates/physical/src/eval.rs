//! Tarskian evaluation of queries over physical databases (§2.1).
//!
//! The evaluator is the textbook recursive one: first-order quantifiers
//! iterate over the domain, so a fixed first-order query is evaluated in
//! polynomial time and logarithmic space in the database — the
//! LOGSPACE data complexity of Theorem 4(1). Second-order quantifiers are
//! evaluated by enumerating all relations over the domain; this is
//! intentionally brutal, because the whole point of Theorem 3 is that the
//! precise simulation hides a second-order quantification whose cost is
//! exactly this enumeration.

use crate::db::PhysicalDb;
use crate::relation::{Elem, Relation};
use crate::tuples::{for_each_relation, TupleSpace};
use qld_logic::{Formula, Query, Term};

/// Evaluation state: a physical database plus variable environments.
pub struct Evaluator<'a> {
    db: &'a PhysicalDb,
    env: Vec<Option<Elem>>,
    so_env: Vec<Option<Relation>>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator sized for `formula`.
    pub fn new(db: &'a PhysicalDb, formula: &Formula) -> Self {
        let env_len = formula.max_var().map_or(0, |v| v.index() + 1);
        let so_len = formula.max_pred_var().map_or(0, |r| r.index() + 1);
        Evaluator {
            db,
            env: vec![None; env_len],
            so_env: vec![None; so_len],
        }
    }

    /// Binds a free variable before evaluation (used for query answers).
    /// Grows the environment if the variable exceeds the body's variables
    /// (a head variable need not occur in the body).
    pub fn bind(&mut self, v: qld_logic::Var, e: Elem) {
        if v.index() >= self.env.len() {
            self.env.resize(v.index() + 1, None);
        }
        self.env[v.index()] = Some(e);
    }

    fn term(&self, t: &Term) -> Elem {
        match t {
            Term::Var(v) => self.env[v.index()]
                .expect("unbound variable: queries must be validated via Query::new"),
            Term::Const(c) => self.db.const_val(*c),
        }
    }

    /// Evaluates a formula under the current environment.
    pub fn eval(&mut self, f: &Formula) -> bool {
        match f {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(p, ts) => {
                let tuple: Vec<Elem> = ts.iter().map(|t| self.term(t)).collect();
                self.db.relation(*p).contains(&tuple)
            }
            Formula::SoAtom(r, ts) => {
                let tuple: Vec<Elem> = ts.iter().map(|t| self.term(t)).collect();
                self.so_env[r.index()]
                    .as_ref()
                    .expect("unbound predicate variable: formula must be checked")
                    .contains(&tuple)
            }
            Formula::Eq(a, b) => self.term(a) == self.term(b),
            Formula::Not(g) => !self.eval(g),
            Formula::And(fs) => fs.iter().all(|g| self.eval(g)),
            Formula::Or(fs) => fs.iter().any(|g| self.eval(g)),
            Formula::Implies(p, q) => !self.eval(p) || self.eval(q),
            Formula::Iff(p, q) => self.eval(p) == self.eval(q),
            Formula::Exists(v, g) => self.quantify(*v, g, true),
            Formula::Forall(v, g) => self.quantify(*v, g, false),
            Formula::SoExists(r, k, g) => self.so_quantify(*r, *k, g, true),
            Formula::SoForall(r, k, g) => self.so_quantify(*r, *k, g, false),
        }
    }

    fn quantify(&mut self, v: qld_logic::Var, body: &Formula, existential: bool) -> bool {
        let saved = self.env[v.index()];
        // Iterate by index to avoid borrowing self.db across the recursive
        // call (the domain slice is cheap to re-fetch).
        let n = self.db.domain().len();
        let mut result = !existential;
        for i in 0..n {
            let e = self.db.domain()[i];
            self.env[v.index()] = Some(e);
            let holds = self.eval(body);
            if holds == existential {
                result = existential;
                break;
            }
        }
        self.env[v.index()] = saved;
        result
    }

    fn so_quantify(
        &mut self,
        r: qld_logic::PredVarId,
        arity: usize,
        body: &Formula,
        existential: bool,
    ) -> bool {
        let saved = self.so_env[r.index()].take();
        let domain: Vec<Elem> = self.db.domain().to_vec();
        let mut result = !existential;
        for_each_relation(&domain, arity, |rel| {
            self.so_env[r.index()] = Some(rel.clone());
            let holds = self.eval(body);
            if holds == existential {
                result = existential;
                false // early exit
            } else {
                true
            }
        });
        self.so_env[r.index()] = saved;
        result
    }
}

/// Does the database satisfy the sentence?
///
/// # Panics
/// Panics if the formula has free (individual or predicate) variables; use
/// [`eval_query`] for open formulas.
pub fn satisfies(db: &PhysicalDb, sentence: &Formula) -> bool {
    debug_assert!(
        sentence.free_vars().is_empty(),
        "satisfies() requires a sentence"
    );
    Evaluator::new(db, sentence).eval(sentence)
}

/// Does the database satisfy every sentence?
pub fn satisfies_all<'a, I: IntoIterator<Item = &'a Formula>>(
    db: &PhysicalDb,
    sentences: I,
) -> bool {
    sentences.into_iter().all(|s| satisfies(db, s))
}

/// Computes the answer `Q(PB) = { d ∈ D^k : I ⊨ φ(d) }` of §2.1.
pub fn eval_query(db: &PhysicalDb, query: &Query) -> Relation {
    let arity = query.arity();
    let head = query.head();
    let body = query.body();
    let mut evaluator = Evaluator::new(db, body);
    let mut answers: Vec<Box<[Elem]>> = Vec::new();
    for tuple in TupleSpace::new(db.domain(), arity) {
        for (v, e) in head.iter().zip(tuple.iter()) {
            evaluator.bind(*v, *e);
        }
        if evaluator.eval(body) {
            answers.push(tuple.into_boxed_slice());
        }
    }
    Relation::from_tuples(arity, answers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_logic::parser::parse_query;
    use qld_logic::Vocabulary;

    /// A little family database: parent edges over {alice, bob, carol}.
    fn family() -> (Vocabulary, PhysicalDb) {
        let mut voc = Vocabulary::new();
        let alice = voc.add_const("alice").unwrap();
        let bob = voc.add_const("bob").unwrap();
        let carol = voc.add_const("carol").unwrap();
        let parent = voc.add_pred("PARENT", 2).unwrap();
        let db = PhysicalDb::builder(&voc)
            .domain([0, 1, 2])
            .constant(alice, 0)
            .constant(bob, 1)
            .constant(carol, 2)
            // alice -> bob -> carol
            .relation_from_tuples(parent, vec![vec![0, 1], vec![1, 2]])
            .build()
            .unwrap();
        (voc, db)
    }

    #[test]
    fn atom_and_equality() {
        let (voc, db) = family();
        let q = parse_query(&voc, "PARENT(alice, bob)").unwrap();
        assert!(satisfies(&db, q.body()));
        let q = parse_query(&voc, "PARENT(bob, alice)").unwrap();
        assert!(!satisfies(&db, q.body()));
        let q = parse_query(&voc, "alice = alice & alice != bob").unwrap();
        assert!(satisfies(&db, q.body()));
    }

    #[test]
    fn open_query_answers() {
        let (voc, db) = family();
        let q = parse_query(&voc, "(x) . exists y. PARENT(x, y)").unwrap();
        let ans = eval_query(&db, &q);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&[0]));
        assert!(ans.contains(&[1]));
    }

    #[test]
    fn grandparent_join() {
        let (voc, db) = family();
        let q = parse_query(&voc, "(x, z) . exists y. PARENT(x, y) & PARENT(y, z)").unwrap();
        let ans = eval_query(&db, &q);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&[0, 2]));
    }

    #[test]
    fn universal_quantifier() {
        let (voc, db) = family();
        // Everything with a parent-child edge out has alice as ancestor?
        // Simpler: ∀x ∃y (PARENT(x,y) ∨ PARENT(y,x)) — connected graph.
        let q = parse_query(&voc, "forall x. exists y. PARENT(x, y) | PARENT(y, x)").unwrap();
        assert!(satisfies(&db, q.body()));
        let q = parse_query(&voc, "forall x. exists y. PARENT(x, y)").unwrap();
        assert!(!satisfies(&db, q.body())); // carol has no child
    }

    #[test]
    fn negation_and_implication() {
        let (voc, db) = family();
        let q = parse_query(&voc, "(x) . !PARENT(x, bob)").unwrap();
        let ans = eval_query(&db, &q);
        assert_eq!(ans.len(), 2); // everyone but alice
        assert!(!ans.contains(&[0]));
        let q = parse_query(&voc, "forall x, y. PARENT(x, y) -> x != y").unwrap();
        assert!(satisfies(&db, q.body()));
    }

    #[test]
    fn boolean_query_zero_arity_answer() {
        let (voc, db) = family();
        let q = parse_query(&voc, "exists x. PARENT(alice, x)").unwrap();
        let ans = eval_query(&db, &q);
        assert_eq!(ans.arity(), 0);
        assert_eq!(ans.len(), 1); // "yes"
        let q = parse_query(&voc, "exists x. PARENT(x, alice)").unwrap();
        let ans = eval_query(&db, &q);
        assert!(ans.is_empty()); // "no"
    }

    #[test]
    fn second_order_exists_transitive_superset() {
        let (voc, db) = family();
        // There is a binary relation containing PARENT that is transitive
        // and relates alice to carol.
        let q = parse_query(
            &voc,
            "exists2 ?T:2. (forall x, y. PARENT(x, y) -> ?T(x, y)) \
             & (forall x, y, z. ?T(x, y) & ?T(y, z) -> ?T(x, z)) \
             & ?T(alice, carol)",
        )
        .unwrap();
        assert!(satisfies(&db, q.body()));
    }

    #[test]
    fn second_order_forall() {
        let (voc, db) = family();
        // Every unary set containing alice's children contains bob.
        let q = parse_query(
            &voc,
            "forall2 ?S:1. (forall x. PARENT(alice, x) -> ?S(x)) -> ?S(bob)",
        )
        .unwrap();
        assert!(satisfies(&db, q.body()));
        // ... but not carol.
        let q = parse_query(
            &voc,
            "forall2 ?S:1. (forall x. PARENT(alice, x) -> ?S(x)) -> ?S(carol)",
        )
        .unwrap();
        assert!(!satisfies(&db, q.body()));
    }

    #[test]
    fn shadowed_variable_scoping() {
        let (voc, db) = family();
        // exists x. PARENT(alice,x) & exists x. PARENT(x,carol):
        // the two x's are independent.
        let q = parse_query(
            &voc,
            "(exists x. PARENT(alice, x)) & (exists x. PARENT(x, carol))",
        )
        .unwrap();
        assert!(satisfies(&db, q.body()));
    }

    #[test]
    fn nnf_preserves_semantics_spot_check() {
        let (voc, db) = family();
        let inputs = [
            "forall x. !(exists y. PARENT(x, y) & !PARENT(y, x))",
            "!(forall x. PARENT(x, x) <-> exists y. PARENT(x, y))",
            "(forall y. PARENT(alice, y)) -> (exists z. PARENT(z, z))",
        ];
        for input in inputs {
            let q = parse_query(&voc, input).unwrap();
            let nnf = qld_logic::nnf::to_nnf(q.body());
            assert_eq!(
                satisfies(&db, q.body()),
                satisfies(&db, &nnf),
                "NNF changed semantics of {input}"
            );
        }
    }
}
