//! Relations: immutable, sorted, duplicate-free tuple sets.
//!
//! Tuples are boxed slices of dense `u32` domain elements; the sorted
//! representation gives `O(log n)` membership, cheap set-equality, and
//! deterministic iteration order (important for reproducible experiment
//! output).

use std::fmt;

/// A domain element. Physical databases in this reproduction always use
/// dense small integers; for the canonical database `Ph₁(LB)` the element
/// `i` *is* the constant `ConstId(i)`.
pub type Elem = u32;

/// An immutable relation: a set of `arity`-tuples over some domain.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    arity: usize,
    /// Sorted lexicographically, no duplicates.
    tuples: Vec<Box<[Elem]>>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: Vec::new(),
        }
    }

    /// Builds a relation from tuples, sorting and deduplicating.
    ///
    /// # Panics
    /// Panics if a tuple's length differs from `arity`.
    pub fn from_tuples(arity: usize, mut tuples: Vec<Box<[Elem]>>) -> Relation {
        for t in &tuples {
            assert_eq!(t.len(), arity, "tuple arity mismatch");
        }
        tuples.sort_unstable();
        tuples.dedup();
        Relation { arity, tuples }
    }

    /// Builds a relation from an iterator of `Vec` tuples.
    pub fn collect<I: IntoIterator<Item = Vec<Elem>>>(arity: usize, iter: I) -> Relation {
        Relation::from_tuples(arity, iter.into_iter().map(Vec::into_boxed_slice).collect())
    }

    /// Number of argument positions.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, tuple: &[Elem]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        self.tuples
            .binary_search_by(|probe| probe.as_ref().cmp(tuple))
            .is_ok()
    }

    /// Iterates over tuples in lexicographic order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[Elem]> {
        self.tuples.iter().map(|t| t.as_ref())
    }

    /// Applies `f` to every component of every tuple, producing a new
    /// relation (used to compute `h(I(P))` in Theorem 1).
    pub fn map_elems(&self, mut f: impl FnMut(Elem) -> Elem) -> Relation {
        Relation::from_tuples(
            self.arity,
            self.tuples
                .iter()
                .map(|t| t.iter().map(|&e| f(e)).collect())
                .collect(),
        )
    }

    /// In-place variant of [`Relation::map_elems`] for hot loops: rewrites
    /// `self` to be `{ f(t) : t ∈ src }`, reusing this relation's existing
    /// tuple allocations instead of building fresh boxed slices per call.
    /// Repeatedly overwriting the same target relation with the images of
    /// one source (as the Theorem 1 enumeration does, one mapping after
    /// another) allocates only when a previous image was *smaller* than the
    /// source (deduplication dropped tuples).
    pub fn assign_mapped(&mut self, src: &Relation, mut f: impl FnMut(Elem) -> Elem) {
        self.arity = src.arity;
        self.tuples.truncate(src.tuples.len());
        let reused = self.tuples.len();
        for (dst, s) in self.tuples.iter_mut().zip(&src.tuples) {
            if dst.len() == src.arity {
                for (d, &e) in dst.iter_mut().zip(s.iter()) {
                    *d = f(e);
                }
            } else {
                *dst = s.iter().map(|&e| f(e)).collect();
            }
        }
        for s in &src.tuples[reused..] {
            self.tuples.push(s.iter().map(|&e| f(e)).collect());
        }
        self.tuples.sort_unstable();
        self.tuples.dedup();
    }

    /// Inserts one tuple, keeping the sorted duplicate-free invariant.
    /// Returns `true` iff the tuple was new — the incremental-maintenance
    /// append path (a sorted insert is `O(n)` memmove, not a rebuild).
    ///
    /// # Panics
    /// Panics if the tuple's length differs from the relation's arity.
    pub fn insert(&mut self, tuple: &[Elem]) -> bool {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        match self
            .tuples
            .binary_search_by(|probe| probe.as_ref().cmp(tuple))
        {
            Ok(_) => false,
            Err(pos) => {
                self.tuples.insert(pos, tuple.into());
                true
            }
        }
    }

    /// Keeps only the tuples for which `keep` returns true (in place;
    /// order and uniqueness are preserved automatically). Returns how many
    /// tuples were dropped. Used by incremental `α_P` maintenance, where a
    /// new fact can only *shrink* the disagreement relation.
    pub fn retain(&mut self, mut keep: impl FnMut(&[Elem]) -> bool) -> usize {
        let before = self.tuples.len();
        self.tuples.retain(|t| keep(t));
        before - self.tuples.len()
    }

    /// True iff `self ⊆ other` (both must have equal arity).
    pub fn is_subset_of(&self, other: &Relation) -> bool {
        debug_assert_eq!(self.arity, other.arity);
        // Merge-walk over the two sorted lists.
        let mut oi = other.tuples.iter();
        'outer: for t in &self.tuples {
            for o in oi.by_ref() {
                match o.cmp(t) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// The set of elements occurring in any tuple (the active domain
    /// contribution of this relation), sorted.
    pub fn active_elems(&self) -> Vec<Elem> {
        let mut elems: Vec<Elem> = self.tuples.iter().flat_map(|t| t.iter().copied()).collect();
        elems.sort_unstable();
        elems.dedup();
        elems
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation/{}{{", self.arity)?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t:?}")?;
        }
        write!(f, "}}")
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a [Elem];
    type IntoIter = std::iter::Map<std::slice::Iter<'a, Box<[Elem]>>, fn(&Box<[Elem]>) -> &[Elem]>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter().map(|t| t.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(tuples: &[&[Elem]]) -> Relation {
        Relation::from_tuples(
            tuples.first().map_or(2, |t| t.len()),
            tuples
                .iter()
                .map(|t| t.to_vec().into_boxed_slice())
                .collect(),
        )
    }

    #[test]
    fn dedup_and_sort() {
        let r = rel(&[&[2, 1], &[1, 2], &[2, 1]]);
        assert_eq!(r.len(), 2);
        let collected: Vec<&[Elem]> = r.iter().collect();
        assert_eq!(collected, vec![&[1, 2][..], &[2, 1][..]]);
    }

    #[test]
    fn contains_works() {
        let r = rel(&[&[0, 1], &[1, 0], &[3, 3]]);
        assert!(r.contains(&[1, 0]));
        assert!(!r.contains(&[0, 0]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        Relation::from_tuples(2, vec![vec![1].into_boxed_slice()]);
    }

    #[test]
    fn map_elems_merges() {
        let r = rel(&[&[0, 1], &[1, 2]]);
        // Collapse 1 into 0.
        let m = r.map_elems(|e| if e == 1 { 0 } else { e });
        assert_eq!(m.len(), 2);
        assert!(m.contains(&[0, 0]));
        assert!(m.contains(&[0, 2]));
    }

    #[test]
    fn assign_mapped_matches_map_elems() {
        let src = rel(&[&[0, 1], &[1, 2], &[2, 0]]);
        let mut buf = Relation::empty(2);
        for target in 0..3u32 {
            let f = |e: Elem| if e > target { target } else { e };
            buf.assign_mapped(&src, f);
            assert_eq!(buf, src.map_elems(f), "collapse above {target}");
        }
        // Growing back after a dedup-shrunken image also works.
        buf.assign_mapped(&src, |e| e);
        assert_eq!(buf, src);
        // Arity change is tracked from the source.
        let unary = rel(&[&[4]]);
        buf.assign_mapped(&unary, |e| e + 1);
        assert_eq!(buf.arity(), 1);
        assert!(buf.contains(&[5]));
    }

    #[test]
    fn insert_keeps_invariants() {
        let mut r = rel(&[&[1, 2], &[3, 4]]);
        assert!(r.insert(&[2, 2]));
        assert!(!r.insert(&[1, 2]), "duplicate insert is a no-op");
        assert!(r.insert(&[0, 0]));
        let collected: Vec<&[Elem]> = r.iter().collect();
        assert_eq!(
            collected,
            vec![&[0, 0][..], &[1, 2][..], &[2, 2][..], &[3, 4][..]]
        );
        assert!(r.contains(&[2, 2]));
        // Equivalent to rebuilding from the union.
        let rebuilt = rel(&[&[1, 2], &[3, 4], &[2, 2], &[0, 0]]);
        assert_eq!(r, rebuilt);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn insert_checks_arity() {
        rel(&[&[1, 2]]).insert(&[1]);
    }

    #[test]
    fn retain_filters_in_place() {
        let mut r = rel(&[&[0, 1], &[1, 1], &[2, 1]]);
        let dropped = r.retain(|t| t[0] != 1);
        assert_eq!(dropped, 1);
        assert_eq!(r, rel(&[&[0, 1], &[2, 1]]));
        assert_eq!(r.retain(|_| true), 0);
    }

    #[test]
    fn subset() {
        let small = rel(&[&[1, 2]]);
        let big = rel(&[&[0, 0], &[1, 2], &[3, 4]]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(Relation::empty(2).is_subset_of(&small));
    }

    #[test]
    fn active_elems() {
        let r = rel(&[&[5, 2], &[2, 7]]);
        assert_eq!(r.active_elems(), vec![2, 5, 7]);
    }

    #[test]
    fn zero_arity_relation() {
        // Boolean answers: {} = no, {()} = yes.
        let no = Relation::empty(0);
        let yes = Relation::from_tuples(0, vec![Vec::new().into_boxed_slice()]);
        assert!(no.is_empty());
        assert_eq!(yes.len(), 1);
        assert!(yes.contains(&[]));
    }
}
