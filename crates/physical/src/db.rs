//! The physical database `(L, I)` and its validating builder.

use crate::relation::{Elem, Relation};
use qld_logic::{ConstId, PredId, Vocabulary};
use std::fmt;

/// Errors raised when assembling an interpretation that is not one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysicalError {
    /// The domain is empty (§2.1 requires a nonempty finite domain).
    EmptyDomain,
    /// A constant symbol was left without a value.
    UnassignedConstant(String),
    /// A constant was assigned an element outside the domain.
    ConstantOutsideDomain(String, Elem),
    /// A relation tuple mentions an element outside the domain.
    TupleOutsideDomain(String, Vec<Elem>),
    /// A relation was given with the wrong arity.
    RelationArity {
        /// Predicate name.
        predicate: String,
        /// Declared arity.
        expected: usize,
        /// Arity of the supplied relation.
        found: usize,
    },
}

impl fmt::Display for PhysicalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysicalError::EmptyDomain => write!(f, "physical database domain must be nonempty"),
            PhysicalError::UnassignedConstant(c) => {
                write!(f, "constant {c} has no assigned value")
            }
            PhysicalError::ConstantOutsideDomain(c, e) => {
                write!(
                    f,
                    "constant {c} assigned to {e}, which is outside the domain"
                )
            }
            PhysicalError::TupleOutsideDomain(p, t) => {
                write!(f, "relation {p} contains tuple {t:?} outside the domain")
            }
            PhysicalError::RelationArity {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "relation {predicate} declared with arity {expected} but given arity {found}"
            ),
        }
    }
}

impl std::error::Error for PhysicalError {}

/// A physical database: a finite interpretation `I` of a vocabulary `L`.
///
/// Constructed via [`PhysicalDbBuilder`], which validates the §2.1
/// well-formedness conditions, and immutable thereafter — with a few
/// audited exceptions that provably preserve well-formedness:
///
/// * [`PhysicalDb::assign_mapped_image`] overwrites a clone of a
///   validated database with the image of its source under a total
///   element mapping, so the Theorem 1 hot loop can reuse one buffer
///   instead of rebuilding;
/// * the incremental-maintenance append path —
///   [`PhysicalDb::insert_tuple`] (validated against domain and arity),
///   [`PhysicalDb::retain_tuples`] (a subset of a valid relation is
///   valid), and [`PhysicalDb::set_relation`] (validated like the
///   builder) — lets delta updates extend the physical relations in
///   place instead of rebuilding the database per mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalDb {
    domain: Vec<Elem>,
    const_val: Vec<Elem>,
    rels: Vec<Relation>,
}

// Physical databases (and the relations they hold) cross thread
// boundaries in the concurrent serving layer; enforce it at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PhysicalDb>();
    assert_send_sync::<Relation>();
};

impl PhysicalDb {
    /// Starts building an interpretation for `voc`.
    pub fn builder(voc: &Vocabulary) -> PhysicalDbBuilder {
        PhysicalDbBuilder::new(voc)
    }

    /// The domain `D`, sorted ascending.
    #[inline]
    pub fn domain(&self) -> &[Elem] {
        &self.domain
    }

    /// The value `I(c)` of a constant symbol.
    #[inline]
    pub fn const_val(&self, c: ConstId) -> Elem {
        self.const_val[c.index()]
    }

    /// The relation `I(P)` of a predicate symbol.
    #[inline]
    pub fn relation(&self, p: PredId) -> &Relation {
        &self.rels[p.index()]
    }

    /// Number of predicate relations stored.
    pub fn num_relations(&self) -> usize {
        self.rels.len()
    }

    /// Total number of tuples across all relations — the "size of the
    /// database" used by the data-complexity measure.
    pub fn total_tuples(&self) -> usize {
        self.rels.iter().map(Relation::len).sum()
    }

    /// True iff `e` is a domain element (binary search).
    #[inline]
    pub fn in_domain(&self, e: Elem) -> bool {
        self.domain.binary_search(&e).is_ok()
    }

    /// Rewrites `self` in place to be the image of `base` under the element
    /// mapping `h` (`h[e]` is the image of element `e`): the domain becomes
    /// `h(D)`, every constant value and relation tuple is remapped. The
    /// result equals rebuilding from mapped parts with
    /// [`PhysicalDbBuilder`], but reuses `self`'s allocations — the
    /// Theorem 1 hot loop clones `Ph₁(LB)` once and overwrites that buffer
    /// for each mapping instead of constructing a fresh database image.
    ///
    /// `self` must interpret the same vocabulary shape as `base` (clone
    /// `base` to create the buffer), and `h` must be defined on every
    /// element of `base`'s domain.
    ///
    /// # Panics
    /// Panics if `self`'s constant or relation count differs from
    /// `base`'s, or (via index bounds) if `h` does not cover an element.
    pub fn assign_mapped_image(&mut self, base: &PhysicalDb, h: &[Elem]) {
        assert_eq!(
            self.const_val.len(),
            base.const_val.len(),
            "image buffer was not cloned from a database of base's shape"
        );
        assert_eq!(
            self.rels.len(),
            base.rels.len(),
            "image buffer was not cloned from a database of base's shape"
        );
        self.domain.clear();
        self.domain
            .extend(base.domain.iter().map(|&e| h[e as usize]));
        self.domain.sort_unstable();
        self.domain.dedup();
        for (dst, &src) in self.const_val.iter_mut().zip(&base.const_val) {
            *dst = h[src as usize];
        }
        for (dst, src) in self.rels.iter_mut().zip(&base.rels) {
            dst.assign_mapped(src, |e| h[e as usize]);
        }
    }

    /// Appends one tuple to a relation in place, validating it exactly as
    /// the builder would (arity and domain membership). Returns `true` iff
    /// the tuple was new. This is the incremental append path delta
    /// updates use instead of rebuilding the database.
    pub fn insert_tuple(&mut self, p: PredId, tuple: &[Elem]) -> Result<bool, PhysicalError> {
        let rel = &self.rels[p.index()];
        if tuple.len() != rel.arity() {
            return Err(PhysicalError::RelationArity {
                predicate: format!("predicate #{}", p.index()),
                expected: rel.arity(),
                found: tuple.len(),
            });
        }
        if tuple.iter().any(|&e| !self.in_domain(e)) {
            return Err(PhysicalError::TupleOutsideDomain(
                format!("predicate #{}", p.index()),
                tuple.to_vec(),
            ));
        }
        Ok(self.rels[p.index()].insert(tuple))
    }

    /// Drops the tuples of one relation for which `keep` returns false, in
    /// place (a subset of a valid relation is always valid). Returns how
    /// many tuples were dropped.
    pub fn retain_tuples(&mut self, p: PredId, keep: impl FnMut(&[Elem]) -> bool) -> usize {
        self.rels[p.index()].retain(keep)
    }

    /// Replaces one relation in place, validating the replacement exactly
    /// as the builder would (arity and domain membership). The clone-free
    /// counterpart of [`PhysicalDb::with_relation`], used by delta updates
    /// to refresh derived relations (e.g. the virtual-`NE` store).
    pub fn set_relation(&mut self, p: PredId, rel: Relation) -> Result<(), PhysicalError> {
        let current = &self.rels[p.index()];
        if rel.arity() != current.arity() {
            return Err(PhysicalError::RelationArity {
                predicate: format!("predicate #{}", p.index()),
                expected: current.arity(),
                found: rel.arity(),
            });
        }
        if let Some(bad) = rel.iter().find(|t| t.iter().any(|&e| !self.in_domain(e))) {
            return Err(PhysicalError::TupleOutsideDomain(
                format!("predicate #{}", p.index()),
                bad.to_vec(),
            ));
        }
        self.rels[p.index()] = rel;
        Ok(())
    }

    /// Replaces one relation, returning a new database (used by the
    /// second-order evaluator to interpret quantified predicate variables
    /// and by tests). The new relation must have the same arity.
    pub fn with_relation(&self, p: PredId, rel: Relation) -> PhysicalDb {
        assert_eq!(rel.arity(), self.rels[p.index()].arity());
        let mut rels = self.rels.clone();
        rels[p.index()] = rel;
        PhysicalDb {
            domain: self.domain.clone(),
            const_val: self.const_val.clone(),
            rels,
        }
    }
}

/// Validating builder for [`PhysicalDb`].
#[derive(Debug, Clone)]
pub struct PhysicalDbBuilder {
    pred_arities: Vec<usize>,
    pred_names: Vec<String>,
    const_names: Vec<String>,
    domain: Vec<Elem>,
    const_val: Vec<Option<Elem>>,
    rels: Vec<Option<Relation>>,
}

impl PhysicalDbBuilder {
    /// Creates a builder that knows the vocabulary's shape (names are kept
    /// only for error messages).
    pub fn new(voc: &Vocabulary) -> Self {
        PhysicalDbBuilder {
            pred_arities: voc.preds().map(|p| voc.pred_arity(p)).collect(),
            pred_names: voc.preds().map(|p| voc.pred_name(p).to_owned()).collect(),
            const_names: voc.consts().map(|c| voc.const_name(c).to_owned()).collect(),
            domain: Vec::new(),
            const_val: vec![None; voc.num_consts()],
            rels: vec![None; voc.num_preds()],
        }
    }

    /// Sets the domain (sorted and deduplicated automatically).
    pub fn domain<I: IntoIterator<Item = Elem>>(mut self, elems: I) -> Self {
        self.domain = elems.into_iter().collect();
        self.domain.sort_unstable();
        self.domain.dedup();
        self
    }

    /// Assigns a value to a constant symbol.
    pub fn constant(mut self, c: ConstId, value: Elem) -> Self {
        self.const_val[c.index()] = Some(value);
        self
    }

    /// Supplies the relation for a predicate.
    pub fn relation(mut self, p: PredId, rel: Relation) -> Self {
        self.rels[p.index()] = Some(rel);
        self
    }

    /// Supplies the relation for a predicate from raw tuples.
    pub fn relation_from_tuples<I: IntoIterator<Item = Vec<Elem>>>(
        self,
        p: PredId,
        tuples: I,
    ) -> Self {
        let arity = self.pred_arities[p.index()];
        let rel = Relation::collect(arity, tuples);
        self.relation(p, rel)
    }

    /// Validates and produces the interpretation. Unsupplied relations
    /// default to empty; unassigned constants are an error.
    pub fn build(self) -> Result<PhysicalDb, PhysicalError> {
        if self.domain.is_empty() {
            return Err(PhysicalError::EmptyDomain);
        }
        let in_domain = |e: Elem| self.domain.binary_search(&e).is_ok();
        let mut const_val = Vec::with_capacity(self.const_val.len());
        for (i, v) in self.const_val.iter().enumerate() {
            match v {
                None => {
                    return Err(PhysicalError::UnassignedConstant(
                        self.const_names[i].clone(),
                    ))
                }
                Some(e) if !in_domain(*e) => {
                    return Err(PhysicalError::ConstantOutsideDomain(
                        self.const_names[i].clone(),
                        *e,
                    ))
                }
                Some(e) => const_val.push(*e),
            }
        }
        let mut rels = Vec::with_capacity(self.rels.len());
        for (i, r) in self.rels.into_iter().enumerate() {
            let arity = self.pred_arities[i];
            let rel = r.unwrap_or_else(|| Relation::empty(arity));
            if rel.arity() != arity {
                return Err(PhysicalError::RelationArity {
                    predicate: self.pred_names[i].clone(),
                    expected: arity,
                    found: rel.arity(),
                });
            }
            if let Some(bad) = rel.iter().find(|t| t.iter().any(|&e| !in_domain(e))) {
                return Err(PhysicalError::TupleOutsideDomain(
                    self.pred_names[i].clone(),
                    bad.to_vec(),
                ));
            }
            rels.push(rel);
        }
        Ok(PhysicalDb {
            domain: self.domain,
            const_val,
            rels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voc() -> (Vocabulary, ConstId, PredId) {
        let mut voc = Vocabulary::new();
        let a = voc.add_const("a").unwrap();
        voc.add_const("b").unwrap();
        let r = voc.add_pred("R", 2).unwrap();
        (voc, a, r)
    }

    #[test]
    fn builds_valid_db() {
        let (voc, a, r) = voc();
        let b = voc.const_id("b").unwrap();
        let db = PhysicalDb::builder(&voc)
            .domain([0, 1, 2])
            .constant(a, 0)
            .constant(b, 1)
            .relation_from_tuples(r, vec![vec![0, 1], vec![1, 2]])
            .build()
            .unwrap();
        assert_eq!(db.domain(), &[0, 1, 2]);
        assert_eq!(db.const_val(a), 0);
        assert!(db.relation(r).contains(&[0, 1]));
        assert_eq!(db.total_tuples(), 2);
    }

    #[test]
    fn empty_domain_rejected() {
        let (voc, _, _) = voc();
        assert_eq!(
            PhysicalDb::builder(&voc).build().unwrap_err(),
            PhysicalError::EmptyDomain
        );
    }

    #[test]
    fn unassigned_constant_rejected() {
        let (voc, a, _) = voc();
        let err = PhysicalDb::builder(&voc)
            .domain([0])
            .constant(a, 0)
            .build()
            .unwrap_err();
        assert_eq!(err, PhysicalError::UnassignedConstant("b".into()));
    }

    #[test]
    fn constant_outside_domain_rejected() {
        let (voc, a, _) = voc();
        let b = voc.const_id("b").unwrap();
        let err = PhysicalDb::builder(&voc)
            .domain([0])
            .constant(a, 0)
            .constant(b, 9)
            .build()
            .unwrap_err();
        assert_eq!(err, PhysicalError::ConstantOutsideDomain("b".into(), 9));
    }

    #[test]
    fn tuple_outside_domain_rejected() {
        let (voc, a, r) = voc();
        let b = voc.const_id("b").unwrap();
        let err = PhysicalDb::builder(&voc)
            .domain([0, 1])
            .constant(a, 0)
            .constant(b, 1)
            .relation_from_tuples(r, vec![vec![0, 7]])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            PhysicalError::TupleOutsideDomain("R".into(), vec![0, 7])
        );
    }

    #[test]
    fn relation_arity_checked() {
        let (voc, a, r) = voc();
        let b = voc.const_id("b").unwrap();
        let err = PhysicalDb::builder(&voc)
            .domain([0, 1])
            .constant(a, 0)
            .constant(b, 1)
            .relation(r, Relation::empty(3))
            .build()
            .unwrap_err();
        assert!(matches!(err, PhysicalError::RelationArity { .. }));
    }

    #[test]
    fn missing_relations_default_empty() {
        let (voc, a, r) = voc();
        let b = voc.const_id("b").unwrap();
        let db = PhysicalDb::builder(&voc)
            .domain([0, 1])
            .constant(a, 0)
            .constant(b, 1)
            .build()
            .unwrap();
        assert!(db.relation(r).is_empty());
    }

    #[test]
    fn assign_mapped_image_matches_builder() {
        let (voc, a, r) = voc();
        let b = voc.const_id("b").unwrap();
        let base = PhysicalDb::builder(&voc)
            .domain([0, 1, 2])
            .constant(a, 0)
            .constant(b, 1)
            .relation_from_tuples(r, vec![vec![0, 1], vec![1, 2], vec![2, 2]])
            .build()
            .unwrap();
        let mut image = base.clone();
        for h in [[0u32, 1, 2], [0, 1, 1], [2, 2, 2], [1, 0, 0]] {
            image.assign_mapped_image(&base, &h);
            let expected = PhysicalDb::builder(&voc)
                .domain(h.iter().copied())
                .constant(a, h[0])
                .constant(b, h[1])
                .relation(r, base.relation(r).map_elems(|e| h[e as usize]))
                .build()
                .unwrap();
            assert_eq!(image, expected, "mapping {h:?}");
        }
    }

    #[test]
    fn insert_tuple_appends_and_validates() {
        let (voc, a, r) = voc();
        let b = voc.const_id("b").unwrap();
        let mut db = PhysicalDb::builder(&voc)
            .domain([0, 1])
            .constant(a, 0)
            .constant(b, 1)
            .relation_from_tuples(r, vec![vec![0, 1]])
            .build()
            .unwrap();
        assert_eq!(db.insert_tuple(r, &[1, 0]), Ok(true));
        assert_eq!(db.insert_tuple(r, &[1, 0]), Ok(false), "duplicate");
        assert!(db.relation(r).contains(&[1, 0]));
        assert_eq!(db.total_tuples(), 2);
        // The incremental result equals the built-from-scratch database.
        let rebuilt = PhysicalDb::builder(&voc)
            .domain([0, 1])
            .constant(a, 0)
            .constant(b, 1)
            .relation_from_tuples(r, vec![vec![0, 1], vec![1, 0]])
            .build()
            .unwrap();
        assert_eq!(db, rebuilt);
        // Validation matches the builder's.
        assert!(matches!(
            db.insert_tuple(r, &[0]),
            Err(PhysicalError::RelationArity { .. })
        ));
        assert!(matches!(
            db.insert_tuple(r, &[0, 9]),
            Err(PhysicalError::TupleOutsideDomain(..))
        ));
        assert_eq!(db.total_tuples(), 2, "failed inserts change nothing");
    }

    #[test]
    fn retain_and_set_relation() {
        let (voc, a, r) = voc();
        let b = voc.const_id("b").unwrap();
        let mut db = PhysicalDb::builder(&voc)
            .domain([0, 1])
            .constant(a, 0)
            .constant(b, 1)
            .relation_from_tuples(r, vec![vec![0, 1], vec![1, 0], vec![1, 1]])
            .build()
            .unwrap();
        assert_eq!(db.retain_tuples(r, |t| t[0] == 1), 1);
        assert_eq!(db.relation(r).len(), 2);
        db.set_relation(r, Relation::collect(2, vec![vec![0, 0]]))
            .unwrap();
        assert!(db.relation(r).contains(&[0, 0]));
        assert_eq!(db.relation(r).len(), 1);
        assert!(matches!(
            db.set_relation(r, Relation::empty(3)),
            Err(PhysicalError::RelationArity { .. })
        ));
        assert!(matches!(
            db.set_relation(r, Relation::collect(2, vec![vec![0, 9]])),
            Err(PhysicalError::TupleOutsideDomain(..))
        ));
    }

    #[test]
    fn with_relation_replaces() {
        let (voc, a, r) = voc();
        let b = voc.const_id("b").unwrap();
        let db = PhysicalDb::builder(&voc)
            .domain([0, 1])
            .constant(a, 0)
            .constant(b, 1)
            .build()
            .unwrap();
        let db2 = db.with_relation(r, Relation::collect(2, vec![vec![1, 1]]));
        assert!(db.relation(r).is_empty());
        assert!(db2.relation(r).contains(&[1, 1]));
    }
}
