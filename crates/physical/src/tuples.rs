//! Iteration over the tuple space `Dᵏ` and enumeration of relations over it.

use crate::relation::{Elem, Relation};

/// Iterator over all `arity`-tuples with components drawn from `domain`,
/// in lexicographic order of component *positions* (odometer order).
///
/// Yields `|domain|^arity` tuples; the zero-arity space yields exactly the
/// empty tuple.
#[derive(Debug, Clone)]
pub struct TupleSpace<'a> {
    domain: &'a [Elem],
    /// Indices into `domain`, or `None` once exhausted.
    counters: Option<Vec<usize>>,
}

impl<'a> TupleSpace<'a> {
    /// Creates the tuple space `domain^arity`.
    pub fn new(domain: &'a [Elem], arity: usize) -> Self {
        let counters = if arity > 0 && domain.is_empty() {
            None // empty domain has no tuples of positive arity
        } else {
            Some(vec![0; arity])
        };
        TupleSpace { domain, counters }
    }

    /// Total number of tuples in the space.
    pub fn size(&self) -> usize {
        if self.counters.is_none() {
            return 0;
        }
        self.domain
            .len()
            .checked_pow(self.counters.as_ref().map_or(0, Vec::len) as u32)
            .expect("tuple space too large")
    }
}

impl Iterator for TupleSpace<'_> {
    type Item = Vec<Elem>;

    fn next(&mut self) -> Option<Vec<Elem>> {
        let counters = self.counters.as_mut()?;
        let tuple: Vec<Elem> = counters.iter().map(|&i| self.domain[i]).collect();
        // Advance the odometer (most significant digit first, so iteration
        // is lexicographic in the tuple).
        let mut pos = counters.len();
        loop {
            if pos == 0 {
                self.counters = None;
                break;
            }
            pos -= 1;
            counters[pos] += 1;
            if counters[pos] < self.domain.len() {
                break;
            }
            counters[pos] = 0;
        }
        Some(tuple)
    }
}

/// Enumerates every relation of the given arity over `domain`, invoking
/// `visit` on each; stops early (returning `false`) when `visit` returns
/// `false`.
///
/// There are `2^(|domain|^arity)` such relations, so this is only usable
/// for tiny universes — exactly the situation of the Theorem 3 precise
/// simulation, whose cost this brute force *is* (the "second-order
/// universal quantification hidden in the semantics"). The universe is
/// capped at 2⁶³ subsets (tuple-space size ≤ 63) to keep the bitmask in a
/// `u64`; larger requests panic rather than silently truncating.
pub fn for_each_relation(
    domain: &[Elem],
    arity: usize,
    mut visit: impl FnMut(&Relation) -> bool,
) -> bool {
    let universe: Vec<Vec<Elem>> = TupleSpace::new(domain, arity).collect();
    assert!(
        universe.len() <= 63,
        "second-order enumeration over {} tuples is infeasible",
        universe.len()
    );
    let count: u64 = 1u64 << universe.len();
    for mask in 0..count {
        let tuples: Vec<Box<[Elem]>> = universe
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1u64 << i) != 0)
            .map(|(_, t)| t.clone().into_boxed_slice())
            .collect();
        let rel = Relation::from_tuples(arity, tuples);
        if !visit(&rel) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_space_counts() {
        let domain = [0, 1, 2];
        assert_eq!(TupleSpace::new(&domain, 0).count(), 1);
        assert_eq!(TupleSpace::new(&domain, 1).count(), 3);
        assert_eq!(TupleSpace::new(&domain, 2).count(), 9);
        assert_eq!(TupleSpace::new(&domain, 3).count(), 27);
    }

    #[test]
    fn tuple_space_order_is_lexicographic() {
        let domain = [5, 7];
        let tuples: Vec<Vec<Elem>> = TupleSpace::new(&domain, 2).collect();
        assert_eq!(tuples, vec![vec![5, 5], vec![5, 7], vec![7, 5], vec![7, 7]]);
    }

    #[test]
    fn empty_domain_positive_arity() {
        let domain: [Elem; 0] = [];
        assert_eq!(TupleSpace::new(&domain, 2).count(), 0);
        // Zero arity still has the empty tuple even over an empty domain.
        assert_eq!(TupleSpace::new(&domain, 0).count(), 1);
    }

    #[test]
    fn size_matches_count() {
        let domain = [1, 2, 3, 4];
        for arity in 0..4 {
            let ts = TupleSpace::new(&domain, arity);
            assert_eq!(ts.size(), ts.clone().count());
        }
    }

    #[test]
    fn relation_enumeration_counts() {
        let domain = [0, 1];
        let mut n = 0usize;
        for_each_relation(&domain, 1, |_| {
            n += 1;
            true
        });
        assert_eq!(n, 4); // 2^(2^1)
        n = 0;
        for_each_relation(&domain, 2, |_| {
            n += 1;
            true
        });
        assert_eq!(n, 16); // 2^(2^2)
    }

    #[test]
    fn relation_enumeration_early_exit() {
        let domain = [0, 1];
        let mut n = 0usize;
        let completed = for_each_relation(&domain, 2, |_| {
            n += 1;
            n < 3
        });
        assert!(!completed);
        assert_eq!(n, 3);
    }
}
