//! Physical databases — databases as *interpretations* (paper §2.1).
//!
//! A physical database is a pair `(L, I)` where `I` is a finite
//! interpretation: a nonempty finite domain, an assignment of a domain
//! element to every constant symbol, and a relation of the right arity for
//! every predicate symbol (equality is always interpreted as true equality).
//!
//! Queries are evaluated under the ordinary semantic notion of truth:
//! `Q(PB) = { d ∈ D^|x| : I satisfies φ(d) }`.
//!
//! This crate provides:
//!
//! * [`Relation`] — an immutable, sorted, duplicate-free set of tuples;
//! * [`PhysicalDb`] — the interpretation, with a validating builder;
//! * [`eval`] — a straightforward recursive evaluator for first-order
//!   formulas (LOGSPACE data complexity, matching Theorem 4(1)) and, by
//!   brute-force relation enumeration, second-order quantifiers (used only
//!   by the Theorem 3 precise simulation on small instances);
//! * [`tuples::TupleSpace`] — iteration over `Dᵏ`, shared by the evaluator
//!   and by the certain-answer machinery in `qld-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;
pub mod eval;
pub mod relation;
pub mod tuples;

pub use db::{PhysicalDb, PhysicalDbBuilder, PhysicalError};
pub use eval::{eval_query, satisfies, satisfies_all, Evaluator};
pub use relation::{Elem, Relation};
pub use tuples::TupleSpace;
